/**
 * @file
 * OrtLite — the ONNXRuntime analogue: a graph-optimizing runtime with
 * many *pattern-specific* rewrite passes ("over 130 source files on
 * various graph optimizations", §5.1). Its coverage is therefore very
 * sensitive to the structural diversity of input models — the property
 * behind NNSmith's 1.8x coverage win on ONNXRuntime (Fig. 4a).
 *
 * The optimizer is decomposed into named per-rewrite `GraphPass`
 * entries (backends/graph_pass.h): the default pipeline runs every
 * pass in registration order — bit-for-bit the historical monolithic
 * scan — while pass-fuzz mode and runWithPasses() run arbitrary
 * subsets and orders of the same registry.
 */
#include <algorithm>
#include <set>

#include "backends/backend.h"
#include "backends/graph_pass.h"
#include "coverage/coverage.h"
#include "support/logging.h"

namespace nnsmith::backends {

using onnx::OnnxModel;
using onnx::OnnxNode;
using tensor::DType;

namespace {

constexpr const char* kImport = "ortlite/import";
constexpr const char* kPass = "ortlite/pass";

void
covImport(const std::string& key)
{
    coverage::CoverageRegistry::instance().hitDynamic(kImport, key, false);
}

void
covOpt(const std::string& pass, const std::string& key)
{
    coverage::CoverageRegistry::instance().hitDynamic(
        std::string(kPass) + "/" + pass, key, /*pass_only=*/true);
}

std::string
dtypeSig(const OnnxNode& node)
{
    std::string sig;
    for (auto t : node.inDTypes)
        sig += tensor::dtypeName(t) + ",";
    return sig;
}

bool
isUnaryEltwise(const std::string& op)
{
    static const char* kUnary[] = {
        "Relu", "LeakyRelu", "Sigmoid", "Tanh", "Sin", "Cos", "Asin",
        "Acos", "Atan", "Abs", "Neg", "Exp", "Log", "Log2", "Sqrt",
        "Floor", "Ceil", "Round", "Clip", "Softmax", "Not"};
    return std::find_if(std::begin(kUnary), std::end(kUnary),
                        [&](const char* u) { return op == u; }) !=
           std::end(kUnary);
}

bool
isArith(const std::string& op)
{
    return op == "Add" || op == "Sub" || op == "Mul" || op == "Div" ||
           op == "Pow" || op == "Max" || op == "Min";
}

// ---- the pattern-based optimizer, one GraphPass per rewrite family --------

/** Producer/consumer pair statistics every fusion pass consults. */
void
passAnalysisPairs(const OnnxModel& model, std::vector<std::string>&)
{
    for (const auto& n : model.nodes) {
        for (int v : n.inputs) {
            const OnnxNode* producer = producerOf(model, v);
            if (producer == nullptr)
                continue;
            covOpt("analysis.pairs", producer->opName + "+" + n.opName);
            covOpt("analysis.pairs",
                   producer->opName + "+" + n.opName + "/" + dtypeSig(n));
        }
    }
}

/** FuseMatMulScale (ort.fuse.matmul_scale_1x1, crash). */
void
passFuseMatmulScale(const OnnxModel& model, std::vector<std::string>&)
{
    auto& defects = DefectRegistry::instance();
    for (const auto& n : model.nodes) {
        if (n.opName != "MatMul")
            continue;
        covOpt("fuse.matmul_scale", dtypeSig(n));
        const auto& rhs = model.value(n.inputs[1]).shape;
        const OnnxNode* p0 = producerOf(model, n.inputs[0]);
        const OnnxNode* p1 = producerOf(model, n.inputs[1]);
        const bool scaled = (p0 != nullptr && p0->opName == "Mul") ||
                            (p1 != nullptr && p1->opName == "Mul");
        if (scaled)
            covOpt("fuse.matmul_scale", "scaled");
        if (scaled && rhs.rank() == 2 && rhs.numel() == 1 &&
            defects.trigger("ort.fuse.matmul_scale_1x1")) {
            throw BackendError("ort.fuse.matmul_scale_1x1",
                               "FuseMatMulScale: MatMul does not accept "
                               "scalar operands after rewrite");
        }
    }
}

/** MatMul+Add -> Gemm (ort.fuse.matmul_add_gemm, crash). */
void
passFuseMatmulAddGemm(const OnnxModel& model, std::vector<std::string>&)
{
    auto& defects = DefectRegistry::instance();
    for (const auto& n : model.nodes) {
        if (n.opName != "MatMul")
            continue;
        for (const auto* consumer : consumersOf(model, n.outputs[0])) {
            if (consumer->opName != "Add")
                continue;
            covOpt("fuse.matmul_add_gemm", "matmul_add");
            const int other = consumer->inputs[0] == n.outputs[0]
                                  ? consumer->inputs[1]
                                  : consumer->inputs[0];
            if (model.value(other).shape.rank() <= 1 &&
                defects.trigger("ort.fuse.matmul_add_gemm")) {
                throw BackendError("ort.fuse.matmul_add_gemm",
                                   "Gemm rewrite: broadcast bias rank 1 "
                                   "unsupported");
            }
        }
    }
}

/** Relu->Clip fusion (ort.fuse.relu_clip_double, semantic). */
void
passFuseReluClip(const OnnxModel& model,
                 std::vector<std::string>& fired_semantic)
{
    auto& defects = DefectRegistry::instance();
    for (const auto& n : model.nodes) {
        if (n.opName != "Relu")
            continue;
        for (const auto* consumer : consumersOf(model, n.outputs[0])) {
            if (consumer->opName != "Clip")
                continue;
            covOpt("fuse.relu_clip", dtypeSig(n));
            if (!n.inDTypes.empty() && n.inDTypes[0] == DType::kF64 &&
                defects.trigger("ort.fuse.relu_clip_double"))
                fired_semantic.push_back("ort.fuse.relu_clip_double");
        }
    }
}

/** Add simplifications (ort.simplify.add_zero_broadcast, crash). */
void
passSimplifyAddZero(const OnnxModel& model, std::vector<std::string>&)
{
    auto& defects = DefectRegistry::instance();
    for (const auto& n : model.nodes) {
        if (n.opName != "Add")
            continue;
        covOpt("simplify.add_zero", dtypeSig(n));
        for (int v : n.inputs) {
            if (!isWeight(model, v))
                continue;
            const auto& w = model.value(v).shape;
            covOpt("simplify.add_zero",
                   "weight_rank" + std::to_string(w.rank()));
            const int other = n.inputs[0] == v ? n.inputs[1] : n.inputs[0];
            if (w.numel() == 1 && model.value(other).shape.rank() >= 2 &&
                w.rank() != model.value(other).shape.rank() &&
                defects.trigger("ort.simplify.add_zero_broadcast")) {
                throw BackendError("ort.simplify.add_zero_broadcast",
                                   "ConstantFolding: broadcast shape lost "
                                   "while folding trivial addend");
            }
        }
    }
}

/** Neg(Neg(x)) elimination (ort.simplify.double_neg, crash). */
void
passSimplifyDoubleNeg(const OnnxModel& model, std::vector<std::string>&)
{
    auto& defects = DefectRegistry::instance();
    for (const auto& n : model.nodes) {
        if (n.opName != "Neg")
            continue;
        const OnnxNode* producer = producerOf(model, n.inputs[0]);
        if (producer == nullptr || producer->opName != "Neg")
            continue;
        covOpt("simplify.double_neg", dtypeSig(n));
        if (model.value(n.inputs[0]).shape.rank() == 0 &&
            defects.trigger("ort.simplify.double_neg")) {
            throw BackendError("ort.simplify.double_neg",
                               "NegNeg elimination: 0-d tensor "
                               "dereference");
        }
    }
}

/** Add+Softmax -> BiasSoftmax (ort.fuse.bias_softmax, crash). */
void
passFuseBiasSoftmax(const OnnxModel& model, std::vector<std::string>&)
{
    auto& defects = DefectRegistry::instance();
    for (const auto& n : model.nodes) {
        if (n.opName != "Softmax")
            continue;
        covOpt("fuse.bias_softmax",
               "axis" + std::to_string(n.attrs.at("axis")));
        const OnnxNode* producer = producerOf(model, n.inputs[0]);
        if (producer == nullptr || producer->opName != "Add")
            continue;
        covOpt("fuse.bias_softmax", "fused");
        // The fused kernel mishandles a *broadcast* bias on a non-last
        // axis (rank-aligned Adds — all GraphFuzzer's repair produces —
        // take the safe path).
        const bool broadcast_bias =
            model.value(producer->inputs[0]).shape.rank() !=
            model.value(producer->inputs[1]).shape.rank();
        if (broadcast_bias &&
            n.attrs.at("axis") != n.attrs.at("rank") - 1 &&
            defects.trigger("ort.fuse.bias_softmax")) {
            throw BackendError("ort.fuse.bias_softmax",
                               "BiasSoftmax: only last-axis softmax "
                               "supported by the fused kernel");
        }
    }
}

/** Conv+BN folding (ort.fuse.conv_bn, crash). */
void
passFuseConvBn(const OnnxModel& model, std::vector<std::string>&)
{
    auto& defects = DefectRegistry::instance();
    for (const auto& n : model.nodes) {
        if (n.opName != "BatchNorm")
            continue;
        const OnnxNode* producer = producerOf(model, n.inputs[0]);
        if (producer == nullptr || producer->opName != "Conv2d")
            continue;
        covOpt("fuse.conv_bn", dtypeSig(n));
        if (producer->attrs.at("stride") > 1 &&
            producer->attrs.at("pad") > 0 &&
            defects.trigger("ort.fuse.conv_bn")) {
            throw BackendError("ort.fuse.conv_bn",
                               "ConvBNFusion: strided padded conv "
                               "mis-folded");
        }
    }
}

/** Transpose pair elimination (ort.simplify.transpose_transpose). */
void
passSimplifyTransposePair(const OnnxModel& model, std::vector<std::string>&)
{
    auto& defects = DefectRegistry::instance();
    for (const auto& n : model.nodes) {
        if (n.opName != "Transpose")
            continue;
        covOpt("simplify.transpose_pair",
               "rank" + std::to_string(n.attrs.at("rank")));
        const OnnxNode* producer = producerOf(model, n.inputs[0]);
        if (producer == nullptr || producer->opName != "Transpose")
            continue;
        covOpt("simplify.transpose_pair", "pair");
        // Compose the two permutations; identity is safe.
        const int rank = static_cast<int>(n.attrs.at("rank"));
        bool identity = producer->attrs.at("rank") == rank;
        if (identity) {
            for (int i = 0; i < rank; ++i) {
                const int64_t inner =
                    producer->attrs.at("p" + std::to_string(i));
                if (n.attrs.at("p" + std::to_string(inner)) != i)
                    identity = false;
            }
        }
        if (!identity &&
            defects.trigger("ort.simplify.transpose_transpose")) {
            throw BackendError("ort.simplify.transpose_transpose",
                               "TransposeOptimizer: pair assumed "
                               "identity");
        }
    }
}

/** Full-extent slice removal (ort.simplify.slice_noop, semantic). */
void
passSimplifySliceNoop(const OnnxModel& model,
                      std::vector<std::string>& fired_semantic)
{
    auto& defects = DefectRegistry::instance();
    for (const auto& n : model.nodes) {
        if (n.opName != "Slice")
            continue;
        covOpt("simplify.slice_noop",
               "stride" + std::to_string(
                              std::min<int64_t>(n.attrs.at("stride"), 4)));
        const auto& in_shape = model.value(n.inputs[0]).shape;
        const auto axis = static_cast<size_t>(n.attrs.at("axis"));
        if (n.attrs.at("len") == in_shape.dims[axis] &&
            n.attrs.at("stride") > 1 &&
            defects.trigger("ort.simplify.slice_noop"))
            fired_semantic.push_back("ort.simplify.slice_noop");
    }
}

/** Reduce+Squeeze fusion (ort.fuse.reduce_squeeze, crash). */
void
passFuseReduceSqueeze(const OnnxModel& model, std::vector<std::string>&)
{
    auto& defects = DefectRegistry::instance();
    for (const auto& n : model.nodes) {
        if (n.opName != "Squeeze")
            continue;
        const OnnxNode* producer = producerOf(model, n.inputs[0]);
        if (producer == nullptr ||
            producer->opName.rfind("Reduce", 0) != 0 ||
            producer->attrs.at("keepdims") != 1)
            continue;
        covOpt("fuse.reduce_squeeze", producer->opName);
        if (producer->attrs.at("axis") == 0 && n.attrs.at("axis") == 0 &&
            defects.trigger("ort.fuse.reduce_squeeze")) {
            throw BackendError("ort.fuse.reduce_squeeze",
                               "ReduceSqueeze fusion: axis-0 pair "
                               "rejected by kernel registry");
        }
    }
}

/** Per-op attribute-bucket branches (unary/elementwise kernels). */
void
passAnalysisEltwise(const OnnxModel& model, std::vector<std::string>&)
{
    for (const auto& n : model.nodes) {
        if (isUnaryEltwise(n.opName))
            covOpt("analysis.eltwise", n.opName + "/" + dtypeSig(n));
        if (isArith(n.opName))
            covOpt("analysis.eltwise", n.opName + "/" + dtypeSig(n));
    }
}

/** BFCArena accounting (ort.misc.memory_arena, crash). */
void
passMiscMemoryArena(const OnnxModel& model, std::vector<std::string>&)
{
    auto& defects = DefectRegistry::instance();
    const size_t live_values = model.values.size();
    std::set<tensor::DType> dtypes_used;
    for (const auto& v : model.values)
        dtypes_used.insert(v.dtype);
    covOpt("misc.memory_arena",
           "values" + std::to_string(live_values / 8));
    covOpt("misc.memory_arena",
           "dtypes" + std::to_string(dtypes_used.size()));
    // Mixed-element-size allocation patterns on larger models overflow
    // the arena's bin accounting.
    if (live_values >= 22 && dtypes_used.size() >= 3 &&
        defects.trigger("ort.misc.memory_arena")) {
        throw BackendError("ort.misc.memory_arena",
                           "BFCArena: allocation pattern overflow");
    }
}

/** Parallel scheduler (ort.misc.parallel_reorder, semantic). */
void
passMiscScheduler(const OnnxModel& model,
                  std::vector<std::string>& fired_semantic)
{
    auto& defects = DefectRegistry::instance();
    for (const auto& v : model.values) {
        if (consumersOf(model, v.id).size() >= 3) {
            covOpt("misc.scheduler", "fanout3");
            if (defects.trigger("ort.misc.parallel_reorder"))
                fired_semantic.push_back("ort.misc.parallel_reorder");
            break;
        }
    }
}

/** OrtLite backend implementation. */
class OrtLite final : public Backend {
  public:
    explicit OrtLite(uint64_t pass_fuzz_seed)
        : pass_fuzz_seed_(pass_fuzz_seed)
    {
    }

    std::string name() const override { return "OrtLite"; }
    System system() const override { return System::kOrtLite; }

  protected:
    std::vector<tensor::Tensor>
    runImpl(const OnnxModel& model, const exec::LeafValues& leaves,
            OptLevel level,
            std::vector<std::string>& fired_semantic) override
    {
        importChecks(model);
        std::unordered_map<int, int> id_map;
        graph::Graph graph = onnx::importToGraph(model, &id_map);
        if (level == OptLevel::kO3)
            runGraphPassStage(model, "OrtLite", pass_fuzz_seed_,
                              fired_semantic);
        return executeImported(model, graph, id_map, leaves);
    }

    std::vector<tensor::Tensor>
    runPassesImpl(const OnnxModel& model, const exec::LeafValues& leaves,
                  const std::vector<std::string>& pass_names,
                  std::vector<std::string>& fired_semantic) override
    {
        importChecks(model);
        std::unordered_map<int, int> id_map;
        graph::Graph graph = onnx::importToGraph(model, &id_map);
        runGraphPasses(model, "OrtLite", pass_names, fired_semantic);
        return executeImported(model, graph, id_map, leaves);
    }

  private:
    /** Conversion stage (coverage + structural validation). */
    void
    importChecks(const OnnxModel& model)
    {
        // Pattern-insensitive session/allocator/registry plumbing any
        // model exercises (smaller than TVM's: ORT does no codegen).
        coverage::CoverageRegistry::instance().hitRange("ortlite/runtime",
                                                        1800, 1.0);
        for (const auto& n : model.nodes) {
            covImport("op/" + n.opName);
            covImport("op/" + n.opName + "/" + dtypeSig(n));
            for (int v : n.inputs) {
                const auto& shape = model.value(v).shape;
                covImport("rank/" + n.opName + "/" +
                          std::to_string(shape.rank()));
                // Generic kernel-selection plumbing, reachable by any
                // well-formed model (shape-size buckets).
                for (int64_t d : shape.dims) {
                    int bucket = 0;
                    while ((1 << bucket) < d && bucket < 8)
                        ++bucket;
                    covImport("dimbucket/" + std::to_string(bucket));
                }
            }
        }
    }

    uint64_t pass_fuzz_seed_;
};

} // namespace

const std::vector<GraphPass>&
ortLiteGraphPasses()
{
    // Registration order is the historical monolithic scan order of
    // the rewrite families — the default pipeline replays it exactly.
    static const std::vector<GraphPass> registry = {
        {"analysis.pairs", "analysis", true, passAnalysisPairs},
        {"fuse.matmul_scale", "fuse", true, passFuseMatmulScale},
        {"fuse.matmul_add_gemm", "fuse", true, passFuseMatmulAddGemm},
        {"fuse.relu_clip", "fuse", false, passFuseReluClip},
        {"simplify.add_zero", "simplify", true, passSimplifyAddZero},
        {"simplify.double_neg", "simplify", true, passSimplifyDoubleNeg},
        {"fuse.bias_softmax", "fuse", true, passFuseBiasSoftmax},
        {"fuse.conv_bn", "fuse", true, passFuseConvBn},
        {"simplify.transpose_pair", "simplify", true,
         passSimplifyTransposePair},
        {"simplify.slice_noop", "simplify", false, passSimplifySliceNoop},
        {"fuse.reduce_squeeze", "fuse", true, passFuseReduceSqueeze},
        {"analysis.eltwise", "analysis", true, passAnalysisEltwise},
        {"misc.memory_arena", "misc", true, passMiscMemoryArena},
        {"misc.scheduler", "misc", false, passMiscScheduler},
    };
    return registry;
}

std::unique_ptr<Backend>
makeOrtLite(uint64_t pass_fuzz_seed)
{
    // Paper §5.1: ONNXRuntime's instrumented branch population is ~65k.
    coverage::CoverageRegistry::instance().declareTotal("ortlite", 64854);
    return std::make_unique<OrtLite>(pass_fuzz_seed);
}

} // namespace nnsmith::backends
