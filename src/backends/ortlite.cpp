/**
 * @file
 * OrtLite — the ONNXRuntime analogue: a graph-optimizing runtime with
 * many *pattern-specific* rewrite passes ("over 130 source files on
 * various graph optimizations", §5.1). Its coverage is therefore very
 * sensitive to the structural diversity of input models — the property
 * behind NNSmith's 1.8x coverage win on ONNXRuntime (Fig. 4a).
 */
#include <algorithm>
#include <set>

#include "backends/backend.h"
#include "coverage/coverage.h"
#include "support/logging.h"

namespace nnsmith::backends {

using onnx::OnnxModel;
using onnx::OnnxNode;
using tensor::DType;

namespace {

constexpr const char* kImport = "ortlite/import";
constexpr const char* kOpt = "ortlite/optimizer";

void
covImport(const std::string& key)
{
    coverage::CoverageRegistry::instance().hitDynamic(kImport, key, false);
}

void
covOpt(const std::string& pass, const std::string& key)
{
    coverage::CoverageRegistry::instance().hitDynamic(
        std::string(kOpt) + "/" + pass, key, /*pass_only=*/true);
}

std::string
dtypeSig(const OnnxNode& node)
{
    std::string sig;
    for (auto t : node.inDTypes)
        sig += tensor::dtypeName(t) + ",";
    return sig;
}

bool
isUnaryEltwise(const std::string& op)
{
    static const char* kUnary[] = {
        "Relu", "LeakyRelu", "Sigmoid", "Tanh", "Sin", "Cos", "Asin",
        "Acos", "Atan", "Abs", "Neg", "Exp", "Log", "Log2", "Sqrt",
        "Floor", "Ceil", "Round", "Clip", "Softmax", "Not"};
    return std::find_if(std::begin(kUnary), std::end(kUnary),
                        [&](const char* u) { return op == u; }) !=
           std::end(kUnary);
}

bool
isArith(const std::string& op)
{
    return op == "Add" || op == "Sub" || op == "Mul" || op == "Div" ||
           op == "Pow" || op == "Max" || op == "Min";
}

/** OrtLite backend implementation. */
class OrtLite final : public Backend {
  public:
    std::string name() const override { return "OrtLite"; }
    System system() const override { return System::kOrtLite; }

  protected:
    std::vector<tensor::Tensor>
    runImpl(const OnnxModel& model, const exec::LeafValues& leaves,
            OptLevel level,
            std::vector<std::string>& fired_semantic) override
    {
        importChecks(model);
        std::unordered_map<int, int> id_map;
        graph::Graph graph = onnx::importToGraph(model, &id_map);
        if (level == OptLevel::kO3)
            optimize(model, fired_semantic);
        return executeImported(model, graph, id_map, leaves);
    }

  private:
    /** Conversion stage (coverage + structural validation). */
    void
    importChecks(const OnnxModel& model)
    {
        // Pattern-insensitive session/allocator/registry plumbing any
        // model exercises (smaller than TVM's: ORT does no codegen).
        coverage::CoverageRegistry::instance().hitRange("ortlite/runtime",
                                                        1800, 1.0);
        for (const auto& n : model.nodes) {
            covImport("op/" + n.opName);
            covImport("op/" + n.opName + "/" + dtypeSig(n));
            for (int v : n.inputs) {
                const auto& shape = model.value(v).shape;
                covImport("rank/" + n.opName + "/" +
                          std::to_string(shape.rank()));
                // Generic kernel-selection plumbing, reachable by any
                // well-formed model (shape-size buckets).
                for (int64_t d : shape.dims) {
                    int bucket = 0;
                    while ((1 << bucket) < d && bucket < 8)
                        ++bucket;
                    covImport("dimbucket/" + std::to_string(bucket));
                }
            }
        }
    }

    /**
     * The pattern-based optimizer: one sub-pass per rewrite family,
     * each with per-(pattern, dtype, attribute-bucket) branches.
     */
    void
    optimize(const OnnxModel& model,
             std::vector<std::string>& fired_semantic)
    {
        auto& defects = DefectRegistry::instance();

        for (const auto& n : model.nodes) {
            // ---- fusion passes scan producer/consumer pairs --------
            for (int v : n.inputs) {
                const OnnxNode* producer = producerOf(model, v);
                if (producer == nullptr)
                    continue;
                covOpt("pairs", producer->opName + "+" + n.opName);
                covOpt("pairs", producer->opName + "+" + n.opName + "/" +
                                    dtypeSig(n));
            }

            // FuseMatMulScale (ort.fuse.matmul_scale_1x1, crash).
            if (n.opName == "MatMul") {
                covOpt("matmul_scale", dtypeSig(n));
                const auto& rhs = model.value(n.inputs[1]).shape;
                const OnnxNode* p0 = producerOf(model, n.inputs[0]);
                const OnnxNode* p1 = producerOf(model, n.inputs[1]);
                const bool scaled =
                    (p0 != nullptr && p0->opName == "Mul") ||
                    (p1 != nullptr && p1->opName == "Mul");
                if (scaled)
                    covOpt("matmul_scale", "scaled");
                if (scaled && rhs.rank() == 2 && rhs.numel() == 1 &&
                    defects.trigger("ort.fuse.matmul_scale_1x1")) {
                    throw BackendError(
                        "ort.fuse.matmul_scale_1x1",
                        "FuseMatMulScale: MatMul does not accept "
                        "scalar operands after rewrite");
                }
                // MatMul+Add -> Gemm (ort.fuse.matmul_add_gemm).
                for (const auto* consumer :
                     consumersOf(model, n.outputs[0])) {
                    if (consumer->opName != "Add")
                        continue;
                    covOpt("gemm", "matmul_add");
                    const int other = consumer->inputs[0] == n.outputs[0]
                                          ? consumer->inputs[1]
                                          : consumer->inputs[0];
                    if (model.value(other).shape.rank() <= 1 &&
                        defects.trigger("ort.fuse.matmul_add_gemm")) {
                        throw BackendError(
                            "ort.fuse.matmul_add_gemm",
                            "Gemm rewrite: broadcast bias rank 1 "
                            "unsupported");
                    }
                }
            }

            // Relu->Clip fusion (ort.fuse.relu_clip_double, semantic).
            if (n.opName == "Relu") {
                for (const auto* consumer :
                     consumersOf(model, n.outputs[0])) {
                    if (consumer->opName != "Clip")
                        continue;
                    covOpt("relu_clip", dtypeSig(n));
                    if (!n.inDTypes.empty() &&
                        n.inDTypes[0] == DType::kF64 &&
                        defects.trigger("ort.fuse.relu_clip_double"))
                        fired_semantic.push_back(
                            "ort.fuse.relu_clip_double");
                }
            }

            // Add simplifications (ort.simplify.add_zero_broadcast).
            if (n.opName == "Add") {
                covOpt("add_simplify", dtypeSig(n));
                for (int v : n.inputs) {
                    if (!isWeight(model, v))
                        continue;
                    const auto& w = model.value(v).shape;
                    covOpt("add_simplify",
                           "weight_rank" + std::to_string(w.rank()));
                    const int other =
                        n.inputs[0] == v ? n.inputs[1] : n.inputs[0];
                    if (w.numel() == 1 &&
                        model.value(other).shape.rank() >= 2 &&
                        w.rank() != model.value(other).shape.rank() &&
                        defects.trigger(
                            "ort.simplify.add_zero_broadcast")) {
                        throw BackendError(
                            "ort.simplify.add_zero_broadcast",
                            "ConstantFolding: broadcast shape lost "
                            "while folding trivial addend");
                    }
                }
            }

            // Neg(Neg(x)) elimination (ort.simplify.double_neg).
            if (n.opName == "Neg") {
                const OnnxNode* producer = producerOf(model, n.inputs[0]);
                if (producer != nullptr && producer->opName == "Neg") {
                    covOpt("double_neg", dtypeSig(n));
                    if (model.value(n.inputs[0]).shape.rank() == 0 &&
                        defects.trigger("ort.simplify.double_neg")) {
                        throw BackendError(
                            "ort.simplify.double_neg",
                            "NegNeg elimination: 0-d tensor "
                            "dereference");
                    }
                }
            }

            // Add+Softmax -> BiasSoftmax (ort.fuse.bias_softmax).
            if (n.opName == "Softmax") {
                covOpt("bias_softmax",
                       "axis" + std::to_string(n.attrs.at("axis")));
                const OnnxNode* producer = producerOf(model, n.inputs[0]);
                if (producer != nullptr && producer->opName == "Add") {
                    covOpt("bias_softmax", "fused");
                    // The fused kernel mishandles a *broadcast* bias
                    // on a non-last axis (rank-aligned Adds — all
                    // GraphFuzzer's repair produces — take the safe
                    // path).
                    const bool broadcast_bias =
                        model.value(producer->inputs[0]).shape.rank() !=
                        model.value(producer->inputs[1]).shape.rank();
                    if (broadcast_bias &&
                        n.attrs.at("axis") != n.attrs.at("rank") - 1 &&
                        defects.trigger("ort.fuse.bias_softmax")) {
                        throw BackendError(
                            "ort.fuse.bias_softmax",
                            "BiasSoftmax: only last-axis softmax "
                            "supported by the fused kernel");
                    }
                }
            }

            // Conv+BN folding (ort.fuse.conv_bn).
            if (n.opName == "BatchNorm") {
                const OnnxNode* producer = producerOf(model, n.inputs[0]);
                if (producer != nullptr && producer->opName == "Conv2d") {
                    covOpt("conv_bn", dtypeSig(n));
                    if (producer->attrs.at("stride") > 1 &&
                        producer->attrs.at("pad") > 0 &&
                        defects.trigger("ort.fuse.conv_bn")) {
                        throw BackendError(
                            "ort.fuse.conv_bn",
                            "ConvBNFusion: strided padded conv "
                            "mis-folded");
                    }
                }
            }

            // Transpose pair elimination.
            if (n.opName == "Transpose") {
                covOpt("transpose_opt",
                       "rank" + std::to_string(n.attrs.at("rank")));
                const OnnxNode* producer = producerOf(model, n.inputs[0]);
                if (producer != nullptr &&
                    producer->opName == "Transpose") {
                    covOpt("transpose_opt", "pair");
                    // Compose the two permutations; identity is safe.
                    const int rank =
                        static_cast<int>(n.attrs.at("rank"));
                    bool identity =
                        producer->attrs.at("rank") == rank;
                    if (identity) {
                        for (int i = 0; i < rank; ++i) {
                            const int64_t inner = producer->attrs.at(
                                "p" + std::to_string(i));
                            if (n.attrs.at("p" + std::to_string(
                                               inner)) != i)
                                identity = false;
                        }
                    }
                    if (!identity &&
                        defects.trigger(
                            "ort.simplify.transpose_transpose")) {
                        throw BackendError(
                            "ort.simplify.transpose_transpose",
                            "TransposeOptimizer: pair assumed "
                            "identity");
                    }
                }
            }

            // Full-extent slice removal (ort.simplify.slice_noop).
            if (n.opName == "Slice") {
                covOpt("slice_opt",
                       "stride" + std::to_string(std::min<int64_t>(
                           n.attrs.at("stride"), 4)));
                const auto& in_shape = model.value(n.inputs[0]).shape;
                const auto axis =
                    static_cast<size_t>(n.attrs.at("axis"));
                if (n.attrs.at("len") == in_shape.dims[axis] &&
                    n.attrs.at("stride") > 1 &&
                    defects.trigger("ort.simplify.slice_noop"))
                    fired_semantic.push_back("ort.simplify.slice_noop");
            }

            // Reduce+Squeeze fusion (ort.fuse.reduce_squeeze).
            if (n.opName == "Squeeze") {
                const OnnxNode* producer = producerOf(model, n.inputs[0]);
                if (producer != nullptr &&
                    producer->opName.rfind("Reduce", 0) == 0 &&
                    producer->attrs.at("keepdims") == 1) {
                    covOpt("reduce_squeeze", producer->opName);
                    if (producer->attrs.at("axis") == 0 &&
                        n.attrs.at("axis") == 0 &&
                        defects.trigger("ort.fuse.reduce_squeeze")) {
                        throw BackendError(
                            "ort.fuse.reduce_squeeze",
                            "ReduceSqueeze fusion: axis-0 pair "
                            "rejected by kernel registry");
                    }
                }
            }

            // Per-op attribute-bucket branches (unary/elementwise).
            if (isUnaryEltwise(n.opName))
                covOpt("eltwise", n.opName + "/" + dtypeSig(n));
            if (isArith(n.opName))
                covOpt("arith", n.opName + "/" + dtypeSig(n));
        }

        // ---- whole-model (unclassified) defects ----------------------
        const size_t live_values = model.values.size();
        std::set<tensor::DType> dtypes_used;
        for (const auto& v : model.values)
            dtypes_used.insert(v.dtype);
        covOpt("arena", "values" + std::to_string(live_values / 8));
        covOpt("arena", "dtypes" + std::to_string(dtypes_used.size()));
        // Mixed-element-size allocation patterns on larger models
        // overflow the arena's bin accounting.
        if (live_values >= 22 && dtypes_used.size() >= 3 &&
            defects.trigger("ort.misc.memory_arena")) {
            throw BackendError("ort.misc.memory_arena",
                               "BFCArena: allocation pattern overflow");
        }
        for (const auto& v : model.values) {
            if (consumersOf(model, v.id).size() >= 3) {
                covOpt("scheduler", "fanout3");
                if (defects.trigger("ort.misc.parallel_reorder"))
                    fired_semantic.push_back("ort.misc.parallel_reorder");
                break;
            }
        }
    }
};

} // namespace

std::unique_ptr<Backend>
makeOrtLite()
{
    // Paper §5.1: ONNXRuntime's instrumented branch population is ~65k.
    coverage::CoverageRegistry::instance().declareTotal("ortlite", 64854);
    return std::make_unique<OrtLite>();
}

} // namespace nnsmith::backends
