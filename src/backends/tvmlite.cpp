/**
 * @file
 * TVMLite — the Apache TVM analogue: an end-to-end compiler with
 * *general* graph-level passes keyed on operator properties (injective
 * / reduction / complex) rather than specific patterns, plus low-level
 * TIRLite optimization of lowered loop nests. Because its graph passes
 * are property-based, its coverage is less sensitive to pattern
 * diversity than OrtLite's — reproducing the paper's observation that
 * NNSmith's edge on TVM (1.08x) is smaller than on ONNXRuntime (1.8x).
 */
#include <algorithm>

#include "backends/backend.h"
#include "coverage/coverage.h"
#include "support/logging.h"
#include "tirlite/tir_lower.h"
#include "tirlite/tir_passes.h"

namespace nnsmith::backends {

using onnx::OnnxModel;
using onnx::OnnxNode;
using tensor::DType;

namespace {

/**
 * Pattern-insensitive shared infrastructure (parser, IR builders,
 * runtime plumbing). The paper: "simply importing TVM's libraries ...
 * can hit 4015 branches but those branches are unlikely to have bugs";
 * TVM's total instrumented population (~103k) dwarfs its pass-specific
 * part, which is why its coverage is comparatively insensitive to
 * model-pattern diversity (Fig. 4b).
 */
constexpr size_t kTvmSharedInfraBranches = 12800;

void
covImport(const std::string& key)
{
    coverage::CoverageRegistry::instance().hitDynamic("tvmlite/import",
                                                      key, false);
}

void
covPass(const std::string& pass, const std::string& key)
{
    coverage::CoverageRegistry::instance().hitDynamic(
        "tvmlite/transform/" + pass, key, /*pass_only=*/true);
}

/** TVM-style operator property classes (fusion is property-driven). */
std::string
opProperty(const std::string& op)
{
    static const char* kInjective[] = {
        "Relu", "LeakyRelu", "Sigmoid", "Tanh", "Sin", "Cos", "Asin",
        "Acos", "Atan", "Abs", "Neg", "Exp", "Log", "Log2", "Sqrt",
        "Floor", "Ceil", "Round", "Clip", "Not", "Cast", "Add", "Sub",
        "Mul", "Div", "Mod", "Pow", "Max", "Min", "Equal", "Greater", "Less",
        "And", "Or", "Xor", "Where", "Reshape", "Flatten", "Squeeze",
        "Unsqueeze", "Transpose", "Slice", "ConstPad", "ReflectPad",
        "ReplicatePad", "BroadcastTo", "Concat"};
    for (const char* name : kInjective) {
        if (op == name)
            return "injective";
    }
    if (op.rfind("Reduce", 0) == 0 || op == "ArgMax" || op == "ArgMin" ||
        op == "Softmax")
        return "reduce";
    return "complex"; // conv/matmul/norm/resize
}

bool
producesI64(const OnnxNode& n)
{
    return !n.outDTypes.empty() && n.outDTypes[0] == DType::kI64;
}

/** Attribute lookup with a default (nodes differ in attribute sets). */
int64_t
attrOr(const OnnxNode& n, const std::string& key, int64_t fallback)
{
    const auto it = n.attrs.find(key);
    return it == n.attrs.end() ? fallback : it->second;
}

/** TVMLite backend implementation. */
class TvmLite final : public Backend {
  public:
    explicit TvmLite(uint64_t pass_fuzz_seed)
        : passFuzzSeed_(pass_fuzz_seed)
    {
    }

    std::string name() const override { return "TVMLite"; }
    System system() const override { return System::kTvmLite; }

  protected:
    std::vector<tensor::Tensor>
    runImpl(const OnnxModel& model, const exec::LeafValues& leaves,
            OptLevel level,
            std::vector<std::string>& fired_semantic) override
    {
        // Stale import-defect state must not leak across runs: a
        // crash later in a previous compile (or an O0 run, which
        // never reaches graphPasses) leaves entries behind, and a
        // backend whose verdicts depend on its own history breaks the
        // sharded campaign's iteration independence.
        fired_semantic_import_.clear();
        importChecks(model); // conversion defects fire at any level
        std::unordered_map<int, int> id_map;
        graph::Graph graph = onnx::importToGraph(model, &id_map);
        if (level == OptLevel::kO3) {
            graphPasses(model, fired_semantic);
            lowerAndOptimize(graph, fired_semantic);
        }
        return executeImported(model, graph, id_map, leaves);
    }

  private:
    // ---- conversion (frontend) ------------------------------------------

    void
    importChecks(const OnnxModel& model)
    {
        hitTvmSharedInfra(1.0);
        auto& defects = DefectRegistry::instance();
        for (const auto& n : model.nodes) {
            // TVM's frontend is much larger than ONNXRuntime's (§5.1:
            // coverage upper limit 116k vs 65k): the relay converter
            // has per-operator, per-dtype, per-rank and per-shape
            // legalization branches, most of which any well-formed
            // model reaches. This is why TVM's coverage is *less*
            // sensitive to pattern diversity (Fig. 4b vs 4a).
            covImport("op/" + n.opName);
            covImport("prop/" + opProperty(n.opName));
            std::string dtype_sig;
            for (auto t : n.inDTypes) {
                covImport("dtype/" + tensor::dtypeName(t));
                dtype_sig += tensor::dtypeName(t) + ",";
            }
            covImport("legalize/" + n.opName + "/" + dtype_sig);
            for (size_t i = 0; i < n.inputs.size(); ++i) {
                const auto& shape = model.value(n.inputs[i]).shape;
                covImport("rank/" + n.opName + "/" +
                          std::to_string(shape.rank()));
                for (int64_t d : shape.dims) {
                    int bucket = 0;
                    while ((1 << bucket) < d && bucket < 8)
                        ++bucket;
                    covImport("dimbucket/" + n.opName + "/" +
                              std::to_string(bucket));
                }
            }
            for (const auto& [attr_name, attr_value] : n.attrs) {
                covImport("attr/" + n.opName + "/" + attr_name + "=" +
                          std::to_string(std::clamp<int64_t>(attr_value,
                                                             -2, 8)));
            }

            // Scalar-output reduce family (§5.4 wrong scalar handling).
            const bool scalar_out =
                model.value(n.outputs[0]).shape.rank() == 0;
            if (scalar_out)
                covImport("scalar_out/" + n.opName);
            struct ScalarEntry {
                const char* op;
                const char* defect;
            };
            static const ScalarEntry kScalarReduce[] = {
                {"ReduceSum", "tvm.import.scalar_reduce_sum"},
                {"ReduceMean", "tvm.import.scalar_reduce_mean"},
                {"ReduceMax", "tvm.import.scalar_reduce_max"},
                {"ReduceMin", "tvm.import.scalar_reduce_min"},
                {"ReduceProd", "tvm.import.scalar_reduce_prod"},
                {"ArgMax", "tvm.import.scalar_argmax"},
            };
            for (const auto& entry : kScalarReduce) {
                if (scalar_out && n.opName == entry.op &&
                    defects.trigger(entry.defect)) {
                    throw BackendError(
                        entry.defect,
                        std::string("relay frontend: cannot squeeze "
                                    "0-d output of ") + entry.op);
                }
            }

            // Where 3-way broadcast shape inference (§5.4).
            if (n.opName == "Where") {
                const int rc = model.value(n.inputs[0]).shape.rank();
                const int rt = model.value(n.inputs[1]).shape.rank();
                const int rf = model.value(n.inputs[2]).shape.rank();
                covImport("where/ranks" + std::to_string(rc) +
                          std::to_string(rt) + std::to_string(rf));
                // Paper §5.4: the *lower-ranked* F operand is ignored
                // during shape inference (Where(C[1,1], T[3,1], F[2])).
                if (rf < std::max(rc, rt) &&
                    defects.trigger("tvm.import.where_broadcast")) {
                    throw BackendError(
                        "tvm.import.where_broadcast",
                        "relay.where: lower-ranked operand ignored in "
                        "shape inference");
                }
                if (isWeight(model, n.inputs[0]) &&
                    defects.trigger("tvm.import.bool_where"))
                    fired_semantic_import_.push_back(
                        "tvm.import.bool_where");
                if (!n.inDTypes.empty() && n.inDTypes[1] == DType::kI64 &&
                    defects.trigger("tvm.i64.where")) {
                    throw BackendError("tvm.i64.where",
                                       "relay.where: i64 branches meet "
                                       "i32 index math");
                }
            }

            // MatMul vector broadcasting (§5.4).
            if (n.opName == "MatMul") {
                const auto& a = model.value(n.inputs[0]).shape;
                const auto& b = model.value(n.inputs[1]).shape;
                covImport("matmul/m" + std::to_string(a.dims[0] == 1));
                if ((a.dims[0] == 1 || b.dims[1] == 1) &&
                    defects.trigger("tvm.import.matmul_vector")) {
                    throw BackendError(
                        "tvm.import.matmul_vector",
                        "relay.matmul: single-rank broadcast operand "
                        "rejected");
                }
            }

            // Negative (cropping) pads on activations.
            if (n.opName == "ConstPad" &&
                (n.attrs.at("before") < 0 || n.attrs.at("after") < 0)) {
                covImport("pad/negative");
                if (!isWeight(model, n.inputs[0]) &&
                    defects.trigger("tvm.import.negative_pad")) {
                    throw BackendError(
                        "tvm.import.negative_pad",
                        "relay.pad: negative padding width");
                }
            }

            // Cast-to-bool feeding logic ops imports as identity.
            if (n.opName == "Cast" && !n.outDTypes.empty() &&
                n.outDTypes[0] == DType::kBool) {
                covImport("cast/bool");
                for (const auto* consumer :
                     consumersOf(model, n.outputs[0])) {
                    if (consumer->opName == "And" ||
                        consumer->opName == "Or" ||
                        consumer->opName == "Xor" ||
                        consumer->opName == "Not") {
                        if (defects.trigger("tvm.import.cast_bool"))
                            fired_semantic_import_.push_back(
                                "tvm.import.cast_bool");
                    }
                }
            }
        }
    }

    // ---- graph-level transformation --------------------------------------

    void
    graphPasses(const OnnxModel& model,
                std::vector<std::string>& fired_semantic)
    {
        for (const auto& id : fired_semantic_import_)
            fired_semantic.push_back(id);
        fired_semantic_import_.clear();

        auto& defects = DefectRegistry::instance();

        // Pass 1: AlterOpLayout — rewrite Conv2d to NCHW4c, then make
        // every consumer adapt (hosts the 7-bug layout family).
        for (const auto& n : model.nodes) {
            if (n.opName != "Conv2d")
                continue;
            const auto& kernel = model.value(n.inputs[1]).shape;
            const bool to_nchw4c = kernel.dims[0] % 4 == 0;
            covPass("layout", to_nchw4c ? "rewrite" : "keep");
            if (!to_nchw4c)
                continue;
            for (const auto* consumer : consumersOf(model, n.outputs[0])) {
                covPass("layout", "adapt/" + opProperty(consumer->opName));
                covPass("layout", "adapt/op/" + consumer->opName);
                struct LayoutEntry {
                    bool match;
                    const char* defect;
                };
                const std::string& c = consumer->opName;
                const bool is_binary_bcast =
                    (c == "Add" || c == "Sub" || c == "Mul") &&
                    model.value(consumer->inputs[0]).shape.rank() !=
                        model.value(consumer->inputs[1]).shape.rank();
                const LayoutEntry entries[] = {
                    {c == "Slice" && attrOr(*consumer, "axis", -1) == 1 &&
                         attrOr(*consumer, "stride", 1) > 1,
                     "tvm.layout.nchw4c_slice"},
                    {is_binary_bcast, "tvm.layout.nchw4c_broadcast"},
                    {c.rfind("Reduce", 0) == 0 &&
                         attrOr(*consumer, "axis", -1) == 1,
                     "tvm.layout.nchw4c_reduce"},
                    {c == "Concat" && attrOr(*consumer, "axis", -1) == 1,
                     "tvm.layout.nchw4c_concat"},
                    {(c == "ConstPad" || c == "ReflectPad" ||
                      c == "ReplicatePad") &&
                         attrOr(*consumer, "axis", -1) == 1,
                     "tvm.layout.nchw4c_pad"},
                    {c == "Transpose", "tvm.layout.nchw4c_transpose"},
                    {c == "Resize2d", "tvm.layout.nchw4c_resize"},
                };
                for (const auto& entry : entries) {
                    if (entry.match && defects.trigger(entry.defect)) {
                        throw BackendError(
                            entry.defect,
                            std::string("AlterOpLayout: cannot adapt ") +
                                c + " to NCHW4c");
                    }
                }
            }
        }

        // Pass 2: type/index checking — the i32/i64 family.
        for (const auto& n : model.nodes) {
            covPass("typecheck", producesI64(n) ? "i64" : "i32");
            covPass("typecheck",
                    n.opName + "/" +
                        (n.outDTypes.empty()
                             ? "?"
                             : tensor::dtypeName(n.outDTypes[0])));
            struct I64Entry {
                bool match;
                const char* defect;
            };
            const I64Entry entries[] = {
                {n.opName == "Reshape" && producesI64(n),
                 "tvm.i64.reshape"},
                {n.opName == "BroadcastTo" && producesI64(n),
                 "tvm.i64.broadcastto"},
                {n.opName == "Slice" && producesI64(n),
                 "tvm.i64.slice_bounds"},
                {n.opName == "Concat" && producesI64(n) &&
                     attrOr(n, "axis", -1) == 0,
                 "tvm.i64.concat_axis"},
                {n.opName == "Squeeze" && producesI64(n),
                 "tvm.i64.squeeze"},
                {n.opName == "Flatten" && producesI64(n),
                 "tvm.i64.flatten"},
            };
            for (const auto& entry : entries) {
                if (entry.match && defects.trigger(entry.defect)) {
                    throw BackendError(
                        entry.defect,
                        "relay type checker: i64 shape meets i32 "
                        "index expression in " + n.opName);
                }
            }
            if (n.opName == "ArgMax" || n.opName == "ArgMin") {
                for (const auto* consumer :
                     consumersOf(model, n.outputs[0])) {
                    if ((consumer->opName == "Add" ||
                         consumer->opName == "Sub" ||
                         consumer->opName == "Mul" ||
                         consumer->opName == "Max" ||
                         consumer->opName == "Min") &&
                        defects.trigger("tvm.i64.argmax_consumer")) {
                        throw BackendError(
                            "tvm.i64.argmax_consumer",
                            "relay: i64 index tensor in arithmetic");
                    }
                }
            }
            if (n.opName == "Cast" && producesI64(n)) {
                for (const auto* consumer :
                     consumersOf(model, n.outputs[0])) {
                    if ((consumer->opName == "Add" ||
                         consumer->opName == "Mul") &&
                        defects.trigger("tvm.i64.cast_arith")) {
                        throw BackendError(
                            "tvm.i64.cast_arith",
                            "relay: cast-to-i64 feeding arithmetic");
                    }
                }
            }
        }

        // Pass 3: FuseOps — property-driven grouping.
        int injective_run = 0;
        bool run_has_shape_change = false;
        const auto is_shape_changing = [](const std::string& op) {
            return op == "Reshape" || op == "Transpose" ||
                   op == "Slice" || op == "Concat" || op == "Squeeze" ||
                   op == "Unsqueeze" || op == "Flatten" ||
                   op == "BroadcastTo" || op == "ConstPad" ||
                   op == "ReflectPad" || op == "ReplicatePad";
        };
        for (const auto& n : model.nodes) {
            const std::string prop = opProperty(n.opName);
            covPass("fuse", prop);
            covPass("fuse", "op/" + n.opName);
            covPass("fuse", "fanout" +
                                std::to_string(std::min<size_t>(
                                    consumersOf(model, n.outputs[0])
                                        .size(),
                                    3)));
            if (prop == "injective") {
                ++injective_run;
                run_has_shape_change |= is_shape_changing(n.opName);
            } else {
                injective_run = 0;
                run_has_shape_change = false;
            }
            covPass("fuse", "run" + std::to_string(
                                std::min(injective_run, 5)));
            // The group-budget bug needs a *shape-changing* injective
            // member — pure activation towers (all LEMON can build)
            // fuse fine.
            if (injective_run >= 4 && run_has_shape_change &&
                defects.trigger("tvm.fuse.injective_chain")) {
                throw BackendError("tvm.fuse.injective_chain",
                                   "FuseOps: injective group exceeds "
                                   "kernel parameter budget");
            }
            if ((n.opName == "Add" || n.opName == "Sub" ||
                 n.opName == "Mul") &&
                model.value(n.inputs[0]).shape.rank() !=
                    model.value(n.inputs[1]).shape.rank() &&
                consumersOf(model, n.outputs[0]).size() >= 2 &&
                defects.trigger("tvm.fuse.broadcast_output"))
                fired_semantic.push_back("tvm.fuse.broadcast_output");
            if (n.opName == "Conv2d") {
                int epilogue = 0;
                const OnnxNode* cursor = &n;
                while (true) {
                    const auto consumers =
                        consumersOf(model, cursor->outputs[0]);
                    if (consumers.size() != 1 ||
                        opProperty(consumers[0]->opName) != "injective")
                        break;
                    ++epilogue;
                    cursor = consumers[0];
                }
                covPass("fuse", "conv_epilogue" +
                                    std::to_string(std::min(epilogue, 4)));
                // Needs a non-trivial conv schedule: baselines use
                // k=1/s=1/p=0 instances, which take the fast path.
                if (epilogue >= 3 &&
                    (n.attrs.at("stride") > 1 || n.attrs.at("pad") > 0) &&
                    defects.trigger("tvm.fuse.conv_elemwise")) {
                    throw BackendError("tvm.fuse.conv_elemwise",
                                       "FuseOps: conv epilogue chain "
                                       "overflows schedule");
                }
            }
            if (opProperty(n.opName) == "injective" &&
                consumersOf(model, n.outputs[0]).size() == 2 &&
                defects.trigger("tvm.fuse.multi_consumer"))
                fired_semantic.push_back("tvm.fuse.multi_consumer");
        }

        // Pass 4: FoldConstant — weight-only subgraphs.
        for (const auto& n : model.nodes) {
            bool all_weight = !n.inputs.empty();
            for (int v : n.inputs)
                all_weight &= isWeight(model, v);
            if (!all_weight)
                continue;
            covPass("fold", n.opName);
            if ((n.opName == "ConstPad") &&
                (n.attrs.at("before") < 0 || n.attrs.at("after") < 0) &&
                defects.trigger("tvm.fold.weight_pad")) {
                throw BackendError("tvm.fold.weight_pad",
                                   "FoldConstant: negative pad of "
                                   "constant weight");
            }
            if (n.opName == "Where" &&
                defects.trigger("tvm.fold.constant_where")) {
                throw BackendError("tvm.fold.constant_where",
                                   "FoldConstant: three-constant where");
            }
            if (n.opName == "Reshape" &&
                n.attrs.at("dst_rank") > n.attrs.at("src_rank") &&
                defects.trigger("tvm.fold.reshape_const"))
                fired_semantic.push_back("tvm.fold.reshape_const");
        }

        // Pass 5: arithmetic simplification (the div/mul reorder bug
        // fires on Reshape->Slice index math, §5.4).
        for (const auto& n : model.nodes) {
            if (n.opName != "Slice")
                continue;
            const OnnxNode* producer = producerOf(model, n.inputs[0]);
            if (producer != nullptr && producer->opName == "Reshape") {
                covPass("simplify", "reshape_slice");
                if (n.attrs.at("stride") > 1 &&
                    defects.trigger("tvm.simplify.divmul_reorder"))
                    fired_semantic.push_back(
                        "tvm.simplify.divmul_reorder");
            }
        }
    }

    // ---- low-level lowering + TIR pipeline -------------------------------

    void
    lowerAndOptimize(const graph::Graph& graph,
                     std::vector<std::string>& fired_semantic)
    {
        for (const auto& node : graph.nodes()) {
            if (node.dead || node.kind != graph::NodeKind::kOp)
                continue;
            const auto program = tirlite::lowerNode(graph, node);
            if (!program) {
                covPass("lower", "extern/" + opProperty(node.op->name()));
                continue;
            }
            covPass("lower", node.op->name());
            // Schedule-selection branches: one per (op, size bucket).
            const int64_t numel = graph.value(node.outputs[0])
                                      .type.concreteShape()
                                      .numel();
            int bucket = 0;
            while ((1 << bucket) < numel && bucket < 16)
                ++bucket;
            covPass("schedule",
                    node.op->name() + "/n" + std::to_string(bucket));
            if (passFuzzSeed_ != 0) {
                // Pass-fuzz mode: randomized sequence, derived from
                // the lowered program's structural hash so the draw is
                // a pure function of the test case (shard-invariant —
                // backend instances stay stateless across runs).
                Rng rng(passFuzzSeed_ ^
                        tirlite::hashTirProgram(*program));
                const auto sequence = tirlite::drawPassSequence(rng);
                tirlite::recordSequenceCoverage(sequence);
                tirlite::runTirPasses(*program, sequence,
                                      fired_semantic);
            } else {
                tirlite::runTirPipeline(*program, fired_semantic);
            }
        }
    }

    std::vector<std::string> fired_semantic_import_;
    uint64_t passFuzzSeed_ = 0;
};

} // namespace

std::unique_ptr<Backend>
makeTvmLite(uint64_t pass_fuzz_seed)
{
    // Paper §5.1: TVM's instrumented branch population is ~103k.
    coverage::CoverageRegistry::instance().declareTotal("tvmlite", 102994);
    return std::make_unique<TvmLite>(pass_fuzz_seed);
}

void
hitTvmSharedInfra(double fraction)
{
    coverage::CoverageRegistry::instance().hitRange(
        "tvmlite/runtime", kTvmSharedInfraBranches, fraction);
}

} // namespace nnsmith::backends
