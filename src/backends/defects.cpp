#include "backends/defects.h"

#include <algorithm>

#include "support/logging.h"

namespace nnsmith::backends {

std::string
systemName(System system)
{
    switch (system) {
      case System::kOrtLite: return "ONNXRuntime";
      case System::kTvmLite: return "TVM";
      case System::kTrtLite: return "TensorRT";
      case System::kExporter: return "PyTorch Exporter";
    }
    NNSMITH_PANIC("bad System");
}

std::string
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::kTransformation: return "Transformation";
      case Phase::kConversion: return "Conversion";
      case Phase::kUnclassified: return "Unclassified";
    }
    NNSMITH_PANIC("bad Phase");
}

std::string
symptomName(Symptom symptom)
{
    return symptom == Symptom::kCrash ? "Crash" : "Semantic";
}

DefectRegistry&
DefectRegistry::instance()
{
    static DefectRegistry registry;
    return registry;
}

namespace {

constexpr Phase kT = Phase::kTransformation;
constexpr Phase kC = Phase::kConversion;
constexpr Phase kU = Phase::kUnclassified;
constexpr Symptom kCr = Symptom::kCrash;
constexpr Symptom kSe = Symptom::kSemantic;

} // namespace

DefectRegistry::DefectRegistry()
{
    auto add = [this](const char* id, System sys, Phase phase,
                      Symptom symptom, const char* desc) {
        defects_.push_back(Defect{id, sys, phase, symptom, desc});
    };

    // ---- ONNXRuntime analogue: 10 transformation + 2 unclassified ----
    constexpr System ORT = System::kOrtLite;
    add("ort.fuse.matmul_scale_1x1", ORT, kT, kCr,
        "FuseMatMulScale rewrites (sa*A)@(sb*B); a 1x1 matrix B is "
        "mistaken for a scalar and MatMul rejects it (paper §5.4)");
    add("ort.fuse.relu_clip_double", ORT, kT, kSe,
        "Wrong fusion of a double-precision Relu->Clip connection "
        "(the one bug GraphFuzzer also finds, §5.4)");
    add("ort.simplify.add_zero_broadcast", ORT, kT, kCr,
        "Add-with-ones simplification drops a broadcast");
    add("ort.simplify.double_neg", ORT, kT, kCr,
        "Neg(Neg(x)) elimination crashes on rank-0 input");
    add("ort.fuse.bias_softmax", ORT, kT, kCr,
        "Add+Softmax -> BiasSoftmax fusion assumes last-axis softmax");
    add("ort.fuse.conv_bn", ORT, kT, kCr,
        "Conv+BatchNorm folding mishandles stride>1 with padding");
    add("ort.simplify.transpose_transpose", ORT, kT, kCr,
        "Transpose-pair elimination assumes composed identity");
    add("ort.fuse.matmul_add_gemm", ORT, kT, kCr,
        "MatMul+Add -> Gemm rewrite with broadcast bias");
    add("ort.simplify.slice_noop", ORT, kT, kSe,
        "Full-extent Slice removed as a no-op even when stride > 1");
    add("ort.fuse.reduce_squeeze", ORT, kT, kCr,
        "Reduce(keepdims)+Squeeze fusion breaks on axis 0");
    add("ort.misc.memory_arena", ORT, kU, kCr,
        "Arena allocator bug on models with many values");
    add("ort.misc.parallel_reorder", ORT, kU, kSe,
        "Nondeterministic reordering when one value has >=3 consumers");

    // ---- TVM analogue: 29 transformation + 11 conversion --------------
    constexpr System TVM = System::kTvmLite;
    // Layout family (7, all crashes; paper: "7 layout transformation
    // bugs related to broadcasting, reduce and slicing").
    add("tvm.layout.nchw4c_slice", TVM, kT, kCr,
        "NCHW4c rewrite + channel Slice with stride>1 crashes (§5.4)");
    add("tvm.layout.nchw4c_broadcast", TVM, kT, kCr,
        "NCHW4c rewrite cannot adapt a broadcast Add after Conv2d");
    add("tvm.layout.nchw4c_reduce", TVM, kT, kCr,
        "NCHW4c rewrite vs channel reduction");
    add("tvm.layout.nchw4c_concat", TVM, kT, kCr,
        "NCHW4c rewrite vs channel Concat");
    add("tvm.layout.nchw4c_pad", TVM, kT, kCr,
        "NCHW4c rewrite vs channel padding");
    add("tvm.layout.nchw4c_transpose", TVM, kT, kCr,
        "NCHW4c rewrite vs Transpose consumer");
    add("tvm.layout.nchw4c_resize", TVM, kT, kCr,
        "NCHW4c rewrite vs Resize consumer");
    // int32/int64 family (9 crashes; paper: "9 bugs stopping the
    // compilation due to int32-int64 mismatch").
    add("tvm.i64.reshape", TVM, kT, kCr,
        "i64 shape attr of Reshape meets an i32 index expression");
    add("tvm.i64.broadcastto", TVM, kT, kCr, "i64 BroadcastTo dims");
    add("tvm.i64.argmax_consumer", TVM, kT, kCr,
        "ArgMax's i64 output consumed by arithmetic");
    add("tvm.i64.cast_arith", TVM, kT, kCr, "Cast-to-i64 feeding Add/Mul");
    add("tvm.i64.slice_bounds", TVM, kT, kCr, "i64 Slice bounds");
    add("tvm.i64.concat_axis", TVM, kT, kCr, "i64 Concat on axis 0");
    add("tvm.i64.squeeze", TVM, kT, kCr, "Squeeze of i64 tensor");
    add("tvm.i64.flatten", TVM, kT, kCr, "Flatten of i64 tensor");
    add("tvm.i64.where", TVM, kT, kCr, "Where over i64 branches");
    // Arithmetic simplification (semantic; the div/mul reorder, §5.4).
    add("tvm.simplify.divmul_reorder", TVM, kT, kSe,
        "floor(x%y/i)*i%z simplified to (x%y)%z — wrong order (§5.4)");
    // Operator fusion family (4).
    add("tvm.fuse.injective_chain", TVM, kT, kCr,
        "Fusing >2 chained injective ops into one group");
    add("tvm.fuse.broadcast_output", TVM, kT, kSe,
        "Fused group whose output broadcasts computes stale shape");
    add("tvm.fuse.conv_elemwise", TVM, kT, kCr,
        "Conv2d + long elementwise epilogue fusion");
    add("tvm.fuse.multi_consumer", TVM, kT, kSe,
        "Fusion duplicates a node consumed twice, diverging results");
    // Constant folding family (3).
    add("tvm.fold.weight_pad", TVM, kT, kCr,
        "Folding Pad of a constant weight with negative padding");
    add("tvm.fold.constant_where", TVM, kT, kCr,
        "Folding Where whose three inputs are all constant");
    add("tvm.fold.reshape_const", TVM, kT, kSe,
        "Folded constant Reshape materializes the wrong layout");
    // Low-level (TIRLite) family (5).
    add("tvm.tir.unroll_offset", TVM, kT, kCr,
        "Loop unrolling with a nonzero base offset");
    add("tvm.tir.vectorize_rem", TVM, kT, kCr,
        "Vectorization of loops whose extent % 4 != 0");
    add("tvm.tir.simplify_mod", TVM, kT, kCr,
        "Index mod-simplification on nested mod");
    add("tvm.tir.dead_store", TVM, kT, kSe,
        "Dead-store elimination removes a live store");
    add("tvm.tir.cse_load", TVM, kT, kCr,
        "CSE merges loads across a store");
    // Conversion family (11; 9 crash + 2 semantic).
    add("tvm.import.scalar_reduce_sum", TVM, kC, kCr,
        "Importing ReduceSum producing a scalar (§5.4 scalar family)");
    add("tvm.import.scalar_reduce_mean", TVM, kC, kCr,
        "Importing ReduceMean producing a scalar");
    add("tvm.import.scalar_reduce_max", TVM, kC, kCr,
        "Importing ReduceMax producing a scalar");
    add("tvm.import.scalar_reduce_min", TVM, kC, kCr,
        "Importing ReduceMin producing a scalar");
    add("tvm.import.scalar_reduce_prod", TVM, kC, kCr,
        "Importing ReduceProd producing a scalar");
    add("tvm.import.scalar_argmax", TVM, kC, kCr,
        "Importing ArgMax producing a scalar");
    add("tvm.import.where_broadcast", TVM, kC, kCr,
        "Where(C[1,1],T[3,1],F[2]): low-rank input ignored in shape "
        "inference (§5.4)");
    add("tvm.import.matmul_vector", TVM, kC, kCr,
        "MatMul with single-rank broadcasting (vector operand, §5.4)");
    add("tvm.import.negative_pad", TVM, kC, kCr,
        "Importing ConstPad with negative (cropping) padding");
    add("tvm.import.bool_where", TVM, kC, kSe,
        "Where with constant bool condition mis-imported");
    add("tvm.import.cast_bool", TVM, kC, kSe,
        "Cast-to-bool feeding arithmetic imports as identity");

    // ---- TensorRT analogue: 4 + 2 + 4 ---------------------------------
    constexpr System TRT = System::kTrtLite;
    add("trt.fuse.pointwise", TRT, kT, kCr,
        "Pointwise-fusion of >=4 chained unary ops");
    add("trt.kernel.pool_pad", TRT, kT, kCr,
        "MaxPool kernel selection with pad>0 and stride>1");
    add("trt.fp.fastmath_pow", TRT, kT, kSe,
        "Fast-math Pow drops precision beyond tolerance");
    add("trt.fuse.matmul_relu", TRT, kT, kCr,
        "MatMul+Relu tactic crash");
    add("trt.import.clip_i32", TRT, kC, kSe,
        "int32 Clip (invalid opset-11 model) compiled anyway with "
        "misread attributes (§5.4 data-type mismatch)");
    add("trt.import.rank0", TRT, kC, kCr,
        "Rank-0 model inputs rejected by the network definition");
    add("trt.misc.workspace", TRT, kU, kCr,
        "Workspace sizing failure on large graphs");
    add("trt.misc.tactic", TRT, kU, kCr,
        "Tactic selection failure for wide convolutions");
    add("trt.misc.precision", TRT, kU, kSe,
        "f64 silently downcast to f32 mid-graph");
    add("trt.misc.builder_flag", TRT, kU, kSe,
        "BatchNorm+Conv2d coexistence flips a builder flag");

    // ---- PyTorch exporter analogue: 10 conversion ----------------------
    constexpr System EXP = System::kExporter;
    add("exp.scalar.log2", EXP, kC, kSe,
        "Scalar Log2 exported as rank-1 tensor (§5.4)");
    add("exp.scalar.sqrt", EXP, kC, kCr, "Scalar Sqrt exporter assert");
    add("exp.scalar.exp", EXP, kC, kCr, "Scalar Exp exporter assert");
    add("exp.scalar.sin", EXP, kC, kCr, "Scalar Sin exporter assert");
    add("exp.scalar.neg", EXP, kC, kCr, "Scalar Neg exporter assert");
    add("exp.clip.i32", EXP, kC, kSe,
        "int32 Clip silently exported though unsupported (§5.4)");
    add("exp.attr.pad_drop", EXP, kC, kCr,
        "Zero-length replicate padding trips exporter assert");
    add("exp.dtype.bool_concat", EXP, kC, kSe,
        "bool Concat exported with i32 element type");
    add("exp.perm.transpose_reverse", EXP, kC, kCr,
        "Reversed rank-4 permutation cannot be legalized");
    add("exp.squeeze.axis0", EXP, kC, kCr,
        "Squeeze(axes=[0]) of rank-2 input rejected");

    NNSMITH_ASSERT(defects_.size() == 72, "defect table must mirror "
                   "Table 3's 72 bugs, got ", defects_.size());
}

const Defect*
DefectRegistry::find(const std::string& id) const
{
    for (const auto& d : defects_) {
        if (d.id == id)
            return &d;
    }
    return nullptr;
}

void
DefectRegistry::setEnabled(const std::string& id, bool enabled)
{
    NNSMITH_ASSERT(find(id) != nullptr, "unknown defect ", id);
    const auto it = std::find(disabled_.begin(), disabled_.end(), id);
    if (enabled && it != disabled_.end())
        disabled_.erase(it);
    else if (!enabled && it == disabled_.end())
        disabled_.push_back(id);
}

bool
DefectRegistry::isEnabled(const std::string& id) const
{
    return std::find(disabled_.begin(), disabled_.end(), id) ==
           disabled_.end();
}

bool
DefectRegistry::trigger(const std::string& id)
{
    NNSMITH_ASSERT(find(id) != nullptr, "unknown defect ", id);
    if (!isEnabled(id))
        return false;
    if (std::find(trace_.begin(), trace_.end(), id) == trace_.end())
        trace_.push_back(id);
    return true;
}

thread_local std::vector<std::string> DefectRegistry::trace_;

void
DefectRegistry::clearTrace()
{
    trace_.clear();
}

} // namespace nnsmith::backends
