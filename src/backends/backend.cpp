#include "backends/backend.h"

#include <algorithm>

#include "support/logging.h"

namespace nnsmith::backends {

using onnx::OnnxModel;
using onnx::OnnxNode;
using onnx::ValueKind;
using tensor::DType;
using tensor::Tensor;

RunResult
Backend::run(const OnnxModel& model, const exec::LeafValues& leaves,
             OptLevel level)
{
    RunResult result;
    std::vector<std::string> fired_semantic;
    try {
        result.outputs = runImpl(model, leaves, level, fired_semantic);
    } catch (const BackendError& error) {
        result.status = RunResult::Status::kCrash;
        result.crashKind = error.kind();
        result.crashMessage = error.what();
        return result;
    }
    for (const auto& defect_id : fired_semantic)
        perturbOutputs(result.outputs, defect_id);
    result.firedSemantic = std::move(fired_semantic);
    return result;
}

RunResult
Backend::runWithPasses(const OnnxModel& model, const exec::LeafValues& leaves,
                       const std::vector<std::string>& pass_names)
{
    RunResult result;
    std::vector<std::string> fired_semantic;
    try {
        result.outputs =
            runPassesImpl(model, leaves, pass_names, fired_semantic);
    } catch (const BackendError& error) {
        result.status = RunResult::Status::kCrash;
        result.crashKind = error.kind();
        result.crashMessage = error.what();
        return result;
    }
    for (const auto& defect_id : fired_semantic)
        perturbOutputs(result.outputs, defect_id);
    result.firedSemantic = std::move(fired_semantic);
    return result;
}

std::vector<Tensor>
Backend::runPassesImpl(const OnnxModel&, const exec::LeafValues&,
                       const std::vector<std::string>&,
                       std::vector<std::string>&)
{
    NNSMITH_PANIC("backend ", name(), " has no graph-pass registry");
}

const OnnxNode*
producerOf(const OnnxModel& model, int value_id)
{
    for (const auto& n : model.nodes) {
        if (std::find(n.outputs.begin(), n.outputs.end(), value_id) !=
            n.outputs.end())
            return &n;
    }
    return nullptr;
}

std::vector<const OnnxNode*>
consumersOf(const OnnxModel& model, int value_id)
{
    std::vector<const OnnxNode*> out;
    for (const auto& n : model.nodes) {
        if (std::find(n.inputs.begin(), n.inputs.end(), value_id) !=
            n.inputs.end())
            out.push_back(&n);
    }
    return out;
}

bool
isWeight(const OnnxModel& model, int value_id)
{
    return model.value(value_id).kind == ValueKind::kWeight;
}

std::vector<Tensor>
executeImported(const OnnxModel& model, const graph::Graph& graph,
                const std::unordered_map<int, int>& id_map,
                const exec::LeafValues& leaves)
{
    exec::LeafValues mapped;
    for (const auto& v : model.values) {
        if (v.kind == ValueKind::kIntermediate)
            continue;
        auto leaf = leaves.find(v.id);
        NNSMITH_ASSERT(leaf != leaves.end(), "missing leaf for onnx %",
                       v.id);
        auto mapped_id = id_map.find(v.id);
        NNSMITH_ASSERT(mapped_id != id_map.end(), "unmapped onnx leaf %",
                       v.id);
        // A mis-exported dtype (e.g. exp.dtype.bool_concat) reaches the
        // backend as a cast of the original tensor.
        Tensor tensor = leaf->second;
        if (tensor.dtype() != v.dtype)
            tensor = tensor.castTo(v.dtype);
        mapped.emplace(mapped_id->second, std::move(tensor));
    }
    const auto exec_result = exec::execute(graph, mapped);
    std::vector<Tensor> outputs;
    for (int id : model.outputs) {
        auto mapped_id = id_map.find(id);
        NNSMITH_ASSERT(mapped_id != id_map.end(), "unmapped output %", id);
        outputs.push_back(exec_result.values.at(mapped_id->second));
    }
    return outputs;
}

void
perturbOutputs(std::vector<Tensor>& outputs, const std::string& defect_id)
{
    // Stable per-defect perturbation scale, always > any tolerance.
    uint64_t hash = 1469598103934665603ull;
    for (char c : defect_id)
        hash = (hash ^ static_cast<uint64_t>(c)) * 1099511628211ull;
    const double scale = 1.25 + static_cast<double>(hash % 100) / 100.0;
    for (auto& tensor : outputs) {
        for (int64_t i = 0; i < tensor.numel(); ++i) {
            const double v = tensor.scalarAt(i);
            if (tensor.dtype() == DType::kBool)
                tensor.setScalar(i, v == 0.0 ? 1.0 : 0.0);
            else if (tensor::isInt(tensor.dtype()))
                tensor.setScalar(i, v + 1.0);
            else
                tensor.setScalar(i, v * scale + 0.5);
        }
    }
}

} // namespace nnsmith::backends
