/**
 * @file
 * The backend-agnostic graph-pass registry.
 *
 * PR 3 made TVMLite's low-level TIR stage a *named pass registry*
 * (tirlite/tir_passes.h) so pass subset and order became a fuzzable
 * dimension. This header lifts the same structure to the graph level:
 * OrtLite's pattern optimizer and TrtLite's builder tactics are
 * decomposed into named `GraphPass` entries, so `--pass-fuzz`, the
 * pass-sequence reducer, and corpus replay work uniformly across all
 * three compilers under test (the paper's Fig. 8 Venn, lifted to pass
 * space).
 *
 * Graph passes are *scan-only*: OrtLite and TrtLite execute models
 * through the shared interpreter, so a pass never rewrites the model —
 * it walks it the way the real optimizer would, records coverage,
 * throws backends::BackendError for crash-symptom defects whose
 * structural trigger matches, and appends semantic defect ids to
 * `fired_semantic` (the driver perturbs outputs per fired id, exactly
 * like the monolithic optimizers did). Running the backend's default
 * pipeline is therefore bit-for-bit the historical kO3 behavior.
 *
 * Coverage: every backend records pass bins under one canonical
 * `<backend>/pass/...` scheme (DESIGN.md "Coverage component naming"
 * has the old->new mapping). Sequence bins land under
 * `<backend>/pass/seq`.
 */
#ifndef NNSMITH_BACKENDS_GRAPH_PASS_H
#define NNSMITH_BACKENDS_GRAPH_PASS_H

#include <string>
#include <vector>

#include "onnx/onnx_lite.h"
#include "support/rng.h"

namespace nnsmith::backends {

/**
 * One registered graph-level pass of a backend.
 *
 * `semanticsPreserving` is false exactly for passes that host a
 * *semantic* (wrong-result) seeded defect; every other pass must keep
 * outputs bitwise identical to the pass-off run on any model — the
 * contract the cross-backend property test (tests/graph_pass_test.cpp)
 * checks with the difftest comparator.
 */
struct GraphPass {
    const char* name;     ///< e.g. "fuse.matmul_add_gemm"
    const char* category; ///< "analysis" | "fuse" | "simplify" | "misc" | "tactic"
    bool semanticsPreserving;
    void (*apply)(const onnx::OnnxModel& model,
                  std::vector<std::string>& fired_semantic);
};

/** Does @p backend ("OrtLite" | "TrtLite") own a graph-pass registry?
 *  TVMLite's sequenceable passes live at the TIR level instead. */
bool isGraphPassBackend(const std::string& backend);

/** All passes of @p backend, in stable registration order (which is
 *  also the default pipeline order). Panics for other backends. */
const std::vector<GraphPass>& graphPasses(const std::string& backend);

/** Look up a pass by name; nullptr when unknown. */
const GraphPass* findGraphPass(const std::string& backend,
                               const std::string& name);

/** The fixed default pipeline — the order the non-fuzzed kO3 compile
 *  uses. Equals the registration order of every registered pass. */
const std::vector<std::string>& defaultGraphPipeline(
    const std::string& backend);

/**
 * Run an explicit pass sequence over @p model. Unknown names panic.
 * Semantic defect ids are appended to @p fired_semantic exactly as
 * fired (NOT deduplicated — the historical monolithic optimizers
 * perturbed once per firing, and the default pipeline must stay
 * bit-identical to them).
 */
void runGraphPasses(const onnx::OnnxModel& model,
                    const std::string& backend,
                    const std::vector<std::string>& pass_names,
                    std::vector<std::string>& fired_semantic);

/**
 * The backend's kO3 pass stage: with @p pass_fuzz_seed == 0 run the
 * default pipeline; otherwise draw a randomized sequence from
 * `Rng(pass_fuzz_seed ^ hashOnnxModel(model))` — a pure function of
 * the test case, so sharded campaigns stay byte-identical — record
 * its sequence-coverage bins, and run it.
 */
void runGraphPassStage(const onnx::OnnxModel& model,
                       const std::string& backend,
                       uint64_t pass_fuzz_seed,
                       std::vector<std::string>& fired_semantic);

/** Draw a random pass sequence — a nonempty subset of the registry in
 *  random order — deterministically from @p rng (same idiom as
 *  tirlite::drawPassSequence). */
std::vector<std::string> drawGraphPassSequence(const std::string& backend,
                                               Rng& rng);

/**
 * The sequence-coverage bins of @p sequence: length bucket, first and
 * last pass, and every adjacent ordered pass pair ("pair/<a>><b>").
 * Shared by recordGraphSequenceCoverage and bench_pass_venn (the
 * coverage registry exposes counts, not key strings).
 */
std::vector<std::string> sequenceCoverageBins(
    const std::vector<std::string>& sequence);

/** Record @p sequence's bins under `<backend lowercase>/pass/seq`
 *  (pass-only sites). For TrtLite these bins describe the *fuzzer's
 *  input space*, not compiler internals — the closed-source analogue
 *  still exports no optimizer instrumentation (§5.1). */
void recordGraphSequenceCoverage(const std::string& backend,
                                 const std::vector<std::string>& sequence);

/** Structural FNV-1a hash of a model (over its stable text
 *  serialization) — the graph-level hashTirProgram analogue. */
uint64_t hashOnnxModel(const onnx::OnnxModel& model);

/**
 * Multiset subtraction over fired-semantic lists, order-preserving:
 * the entries of @p fired not matched by an entry of @p baseline.
 * The pass-fuzz oracle (run(kO0) vs runWithPasses) uses this to
 * attribute firings to the pass stage: import-stage defects appear in
 * both lists and cancel, leaving exactly the pass-stage firings.
 */
std::vector<std::string> subtractFired(
    const std::vector<std::string>& fired,
    const std::vector<std::string>& baseline);

// Per-backend registries (defined next to each backend's passes).
const std::vector<GraphPass>& ortLiteGraphPasses();
const std::vector<GraphPass>& trtLiteGraphPasses();

} // namespace nnsmith::backends

#endif // NNSMITH_BACKENDS_GRAPH_PASS_H
