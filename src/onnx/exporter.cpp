#include "onnx/exporter.h"

#include "support/logging.h"

namespace nnsmith::onnx {

using backends::BackendError;
using backends::DefectRegistry;
using graph::Graph;
using graph::NodeKind;
using tensor::DType;

namespace {

/** Crash-symptom exporter defects: scalar mishandling family (§5.4
 *  "Wrong scalar handling": one Log2 report led developers to 37
 *  similar bugs; we seed a representative subset). */
void
checkScalarHandling(const OnnxNode& node, const OnnxModel& model)
{
    if (node.inputs.empty())
        return;
    const bool scalar_input =
        model.value(node.inputs[0]).shape.rank() == 0;
    if (!scalar_input)
        return;
    auto& defects = DefectRegistry::instance();
    struct Entry {
        const char* op;
        const char* defect;
    };
    static const Entry kCrashes[] = {
        {"Sqrt", "exp.scalar.sqrt"},
        {"Exp", "exp.scalar.exp"},
        {"Sin", "exp.scalar.sin"},
        {"Neg", "exp.scalar.neg"},
    };
    for (const auto& entry : kCrashes) {
        if (node.opName == entry.op && defects.trigger(entry.defect)) {
            throw BackendError(
                "export.scalar",
                std::string("exporter assertion: unexpected 0-d tensor "
                            "for ") + entry.op);
        }
    }
}

} // namespace

OnnxModel
exportGraph(const Graph& graph)
{
    NNSMITH_ASSERT(graph.isConcrete(), "export needs a concrete graph");
    auto& defects = DefectRegistry::instance();
    OnnxModel model;

    for (const auto& v : graph.values()) {
        const auto& producer = graph.node(v.producer);
        if (producer.dead)
            continue;
        OnnxValue ov;
        ov.id = v.id;
        switch (producer.kind) {
          case NodeKind::kInput: ov.kind = ValueKind::kInput; break;
          case NodeKind::kWeight: ov.kind = ValueKind::kWeight; break;
          case NodeKind::kOp: ov.kind = ValueKind::kIntermediate; break;
          case NodeKind::kPlaceholder:
            NNSMITH_PANIC("placeholder in concrete graph");
        }
        ov.dtype = v.type.dtype();
        ov.shape = v.type.concreteShape();
        model.values.push_back(std::move(ov));
    }

    for (int node_id : graph.topoOrder()) {
        const auto& n = graph.node(node_id);
        if (n.kind != NodeKind::kOp)
            continue;
        OnnxNode on;
        on.opName = n.op->name();
        on.attrs = n.op->attrMap();
        on.inDTypes = n.op->inDTypes();
        on.outDTypes = n.op->outDTypes();
        on.inputs = n.inputs;
        on.outputs = n.outputs;

        checkScalarHandling(on, model);

        // exp.scalar.log2 (semantic, the paper's Log2 bug): a scalar
        // Log2 output is exported as a rank-1 tensor of one element.
        if (on.opName == "Log2" && !on.inputs.empty() &&
            model.value(on.inputs[0]).shape.rank() == 0 &&
            defects.trigger("exp.scalar.log2")) {
            for (auto& v : model.values) {
                if (v.id == on.outputs[0])
                    v.shape = tensor::Shape{{1}};
            }
        }

        // exp.clip.i32 (semantic): int32 Clip is not in opset 11 but
        // is exported silently; TrtLite later misreads its attributes.
        if (on.opName == "Clip" && !on.inDTypes.empty() &&
            on.inDTypes[0] == DType::kI32)
            defects.trigger("exp.clip.i32"); // recorded; harm is in TRT

        // exp.attr.pad_drop (crash): zero-length replicate padding
        // trips an exporter assertion.
        if (on.opName == "ReplicatePad" && on.attrs.at("before") == 0 &&
            on.attrs.at("after") == 0 &&
            defects.trigger("exp.attr.pad_drop")) {
            throw BackendError("export.pad",
                               "exporter assertion: empty pad list");
        }

        // exp.dtype.bool_concat (semantic): bool Concat is exported
        // with an i32 element type annotation.
        if (on.opName == "Concat" && !on.inDTypes.empty() &&
            on.inDTypes[0] == DType::kBool &&
            defects.trigger("exp.dtype.bool_concat")) {
            on.inDTypes.assign(on.inDTypes.size(), DType::kI32);
            on.outDTypes.assign(on.outDTypes.size(), DType::kI32);
        }

        // exp.perm.transpose_reverse (crash): rank-4 full-reversal
        // permutations hit an exporter bug.
        if (on.opName == "Transpose" && on.attrs.count("rank") &&
            on.attrs.at("rank") == 4 && on.attrs.at("p0") == 3 &&
            on.attrs.at("p1") == 2 && on.attrs.at("p2") == 1 &&
            on.attrs.at("p3") == 0 &&
            defects.trigger("exp.perm.transpose_reverse")) {
            throw BackendError("export.transpose",
                               "exporter: cannot legalize reversed "
                               "rank-4 permutation");
        }

        // exp.squeeze.axis0 (crash): Squeeze(axis=0) of a rank-2
        // tensor emits an invalid axes attribute.
        if (on.opName == "Squeeze" && on.attrs.at("rank") == 2 &&
            on.attrs.at("axis") == 0 &&
            defects.trigger("exp.squeeze.axis0")) {
            throw BackendError("export.squeeze",
                               "exporter: axes=[0] rejected for rank-2 "
                               "input");
        }

        model.nodes.push_back(std::move(on));
    }

    model.outputs = graph.outputValues();
    return model;
}

} // namespace nnsmith::onnx
