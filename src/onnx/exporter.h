/**
 * @file
 * The PyTorch-ONNX-exporter analogue (paper §4).
 *
 * Converts a concrete Graph into an OnnxLite model. Deliberately
 * carries ten seeded conversion defects transcribed from the paper's
 * bug study (wrong scalar handling à la Log2, silently exporting int32
 * Clip, ...). Crash-symptom defects throw BackendError("export.*");
 * semantic ones corrupt the exported metadata, which downstream
 * backends then faithfully mis-execute.
 */
#ifndef NNSMITH_ONNX_EXPORTER_H
#define NNSMITH_ONNX_EXPORTER_H

#include "backends/defects.h"
#include "onnx/onnx_lite.h"

namespace nnsmith::onnx {

/** Export a concrete graph to OnnxLite. May throw BackendError. */
OnnxModel exportGraph(const graph::Graph& graph);

} // namespace nnsmith::onnx

#endif // NNSMITH_ONNX_EXPORTER_H
