/**
 * @file
 * OnnxLite — the interchange model format (the paper's ONNX analogue).
 *
 * Generated graphs are exported to OnnxLite (§4: "export the model to
 * the deployment-friendly ONNX format"); each backend imports OnnxLite
 * into its own representation, which is where conversion bugs live.
 * The format round-trips through a stable text serialization so test
 * cases can be saved, shared, and replayed.
 */
#ifndef NNSMITH_ONNX_ONNX_LITE_H
#define NNSMITH_ONNX_ONNX_LITE_H

#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "ops/op_base.h"
#include "tensor/tensor_type.h"

namespace nnsmith::onnx {

/** Role of a value in the model. */
enum class ValueKind { kInput, kWeight, kIntermediate };

/** One tensor value in the model. */
struct OnnxValue {
    int id = -1;
    ValueKind kind = ValueKind::kIntermediate;
    tensor::DType dtype = tensor::DType::kF32;
    tensor::Shape shape;
};

/** One operator node (already in topological order). */
struct OnnxNode {
    std::string opName;
    ops::AttrMap attrs;
    std::vector<tensor::DType> inDTypes;
    std::vector<tensor::DType> outDTypes;
    std::vector<int> inputs;  ///< value ids
    std::vector<int> outputs; ///< value ids
};

/** A serializable OnnxLite model. */
struct OnnxModel {
    int opset = 13;
    std::vector<OnnxValue> values;
    std::vector<OnnxNode> nodes;
    std::vector<int> outputs; ///< model output value ids

    const OnnxValue& value(int id) const;

    /** Stable text rendering (also the on-disk format). */
    std::string serialize() const;

    /** Inverse of serialize(); throws FatalError on malformed text. */
    static OnnxModel deserialize(const std::string& text);
};

/**
 * Rebuild an executable Graph from an OnnxLite model using the
 * operator registry (shared by all backend importers).
 *
 * @param id_map optional out-parameter mapping OnnxLite value ids to
 *               the rebuilt graph's value ids (leaves and outputs).
 */
graph::Graph importToGraph(const OnnxModel& model,
                           std::unordered_map<int, int>* id_map = nullptr);

} // namespace nnsmith::onnx

#endif // NNSMITH_ONNX_ONNX_LITE_H
