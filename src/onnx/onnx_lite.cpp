#include "onnx/onnx_lite.h"

#include <sstream>
#include <unordered_map>

#include "ops/registry.h"
#include "support/logging.h"

namespace nnsmith::onnx {

using graph::Graph;
using graph::NodeKind;
using tensor::DType;
using tensor::Shape;
using tensor::TensorType;

const OnnxValue&
OnnxModel::value(int id) const
{
    for (const auto& v : values) {
        if (v.id == id)
            return v;
    }
    NNSMITH_PANIC("no OnnxValue with id ", id);
}

namespace {

const char*
kindName(ValueKind kind)
{
    switch (kind) {
      case ValueKind::kInput: return "input";
      case ValueKind::kWeight: return "weight";
      case ValueKind::kIntermediate: return "inter";
    }
    return "?";
}

ValueKind
kindFromName(const std::string& name)
{
    if (name == "input")
        return ValueKind::kInput;
    if (name == "weight")
        return ValueKind::kWeight;
    if (name == "inter")
        return ValueKind::kIntermediate;
    fatal("bad value kind: " + name);
}

std::string
shapeToken(const Shape& shape)
{
    std::string s = "[";
    for (size_t i = 0; i < shape.dims.size(); ++i) {
        if (i)
            s += ",";
        s += std::to_string(shape.dims[i]);
    }
    return s + "]";
}

Shape
shapeFromToken(const std::string& token)
{
    NNSMITH_ASSERT(token.size() >= 2 && token.front() == '[' &&
                       token.back() == ']',
                   "bad shape token ", token);
    Shape shape;
    std::string body = token.substr(1, token.size() - 2);
    if (body.empty())
        return shape;
    std::istringstream is(body);
    std::string dim;
    while (std::getline(is, dim, ','))
        shape.dims.push_back(std::stoll(dim));
    return shape;
}

} // namespace

std::string
OnnxModel::serialize() const
{
    std::ostringstream os;
    os << "onnxlite v1\n";
    os << "opset " << opset << "\n";
    for (const auto& v : values) {
        os << "value %" << v.id << " " << kindName(v.kind) << " "
           << tensor::dtypeName(v.dtype) << shapeToken(v.shape) << "\n";
    }
    for (const auto& n : nodes) {
        os << "node " << n.opName << " in(";
        for (size_t i = 0; i < n.inputs.size(); ++i)
            os << (i ? "," : "") << "%" << n.inputs[i];
        os << ") out(";
        for (size_t i = 0; i < n.outputs.size(); ++i)
            os << (i ? "," : "") << "%" << n.outputs[i];
        os << ") dt(";
        for (size_t i = 0; i < n.inDTypes.size(); ++i)
            os << (i ? "," : "") << tensor::dtypeName(n.inDTypes[i]);
        os << "->";
        for (size_t i = 0; i < n.outDTypes.size(); ++i)
            os << (i ? "," : "") << tensor::dtypeName(n.outDTypes[i]);
        os << ") attrs{";
        bool first = true;
        for (const auto& [key, value] : n.attrs) {
            if (!first)
                os << ",";
            first = false;
            os << key << "=" << value;
        }
        os << "}\n";
    }
    os << "outputs";
    for (int id : outputs)
        os << " %" << id;
    os << "\n";
    return os.str();
}

OnnxModel
OnnxModel::deserialize(const std::string& text)
{
    OnnxModel model;
    std::istringstream is(text);
    std::string line;
    if (!std::getline(is, line) || line != "onnxlite v1")
        fatal("not an onnxlite v1 document");
    auto expect_prefix = [](const std::string& l, const std::string& p) {
        if (l.rfind(p, 0) != 0)
            fatal("malformed onnxlite line: " + l);
        return l.substr(p.size());
    };
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        if (line.rfind("opset ", 0) == 0) {
            model.opset = std::stoi(line.substr(6));
        } else if (line.rfind("value ", 0) == 0) {
            // value %<id> <kind> <dtype>[dims]
            std::istringstream ls(expect_prefix(line, "value %"));
            OnnxValue v;
            std::string rest;
            ls >> v.id;
            std::string kind_token;
            ls >> kind_token;
            v.kind = kindFromName(kind_token);
            std::string type_token;
            ls >> type_token;
            const auto bracket = type_token.find('[');
            NNSMITH_ASSERT(bracket != std::string::npos, "bad value line ",
                           line);
            v.dtype = tensor::dtypeFromName(type_token.substr(0, bracket));
            v.shape = shapeFromToken(type_token.substr(bracket));
            model.values.push_back(std::move(v));
        } else if (line.rfind("node ", 0) == 0) {
            OnnxNode n;
            // node <op> in(%a,%b) out(%c) dt(f32,f32->f32) attrs{k=v,...}
            auto section = [&line](const std::string& tag) {
                const auto start = line.find(tag + "(");
                NNSMITH_ASSERT(start != std::string::npos, "bad node line ",
                               line);
                const auto open = start + tag.size() + 1;
                const auto close = line.find(')', open);
                return line.substr(open, close - open);
            };
            {
                std::istringstream ls(line.substr(5));
                ls >> n.opName;
            }
            auto parse_ids = [](const std::string& body) {
                std::vector<int> ids;
                std::istringstream ss(body);
                std::string tok;
                while (std::getline(ss, tok, ',')) {
                    if (!tok.empty() && tok[0] == '%')
                        ids.push_back(std::stoi(tok.substr(1)));
                }
                return ids;
            };
            n.inputs = parse_ids(section("in"));
            n.outputs = parse_ids(section("out"));
            {
                const std::string dt = section("dt");
                const auto arrow = dt.find("->");
                NNSMITH_ASSERT(arrow != std::string::npos, "bad dt ", dt);
                auto parse_dts = [](const std::string& body) {
                    std::vector<DType> dts;
                    std::istringstream ss(body);
                    std::string tok;
                    while (std::getline(ss, tok, ','))
                        dts.push_back(tensor::dtypeFromName(tok));
                    return dts;
                };
                n.inDTypes = parse_dts(dt.substr(0, arrow));
                n.outDTypes = parse_dts(dt.substr(arrow + 2));
            }
            {
                const auto open = line.find("attrs{");
                const auto close = line.rfind('}');
                std::string body =
                    line.substr(open + 6, close - open - 6);
                std::istringstream ss(body);
                std::string tok;
                while (std::getline(ss, tok, ',')) {
                    const auto eq = tok.find('=');
                    if (eq == std::string::npos)
                        continue;
                    n.attrs[tok.substr(0, eq)] =
                        std::stoll(tok.substr(eq + 1));
                }
            }
            model.nodes.push_back(std::move(n));
        } else if (line.rfind("outputs", 0) == 0) {
            std::istringstream ls(line.substr(7));
            std::string tok;
            while (ls >> tok) {
                if (!tok.empty() && tok[0] == '%')
                    model.outputs.push_back(std::stoi(tok.substr(1)));
            }
        } else {
            fatal("unrecognized onnxlite line: " + line);
        }
    }
    return model;
}

graph::Graph
importToGraph(const OnnxModel& model, std::unordered_map<int, int>* out_map)
{
    Graph g;
    std::unordered_map<int, int> id_map; // onnx value id -> graph value id
    for (const auto& v : model.values) {
        if (v.kind == ValueKind::kIntermediate)
            continue;
        const NodeKind kind = v.kind == ValueKind::kInput
                                  ? NodeKind::kInput
                                  : NodeKind::kWeight;
        id_map[v.id] = g.addLeaf(
            kind, TensorType::concrete(v.dtype, v.shape),
            "v" + std::to_string(v.id));
    }
    const auto& registry = ops::OpRegistry::global();
    for (const auto& n : model.nodes) {
        const auto* meta = registry.find(n.opName);
        if (meta == nullptr) {
            fatal("unknown operator in onnxlite model: " + n.opName);
        }
        auto op = meta->reconstruct(n.attrs);
        op->setDTypes(ops::DTypeCombo{n.inDTypes, n.outDTypes});
        std::vector<int> inputs;
        for (int id : n.inputs) {
            NNSMITH_ASSERT(id_map.count(id), "node input %", id,
                           " not yet produced (not topo order?)");
            inputs.push_back(id_map[id]);
        }
        std::vector<TensorType> out_types;
        for (int id : n.outputs) {
            const auto& v = model.value(id);
            out_types.push_back(TensorType::concrete(v.dtype, v.shape));
        }
        const int node_id = g.addOp(
            std::shared_ptr<ops::OpBase>(std::move(op)), inputs, out_types);
        for (size_t i = 0; i < n.outputs.size(); ++i)
            id_map[n.outputs[i]] = g.node(node_id).outputs[i];
    }
    if (out_map != nullptr)
        *out_map = std::move(id_map);
    return g;
}

} // namespace nnsmith::onnx
