#include "tensor/tensor.h"

#include <sstream>

namespace nnsmith::tensor {

Tensor
Tensor::zeros(DType dtype, const Shape& shape)
{
    Tensor t;
    t.dtype_ = dtype;
    t.shape_ = shape;
    const size_t n = static_cast<size_t>(shape.numel());
    switch (dtype) {
      case DType::kF32:  t.storage_ = std::vector<float>(n, 0.0f); break;
      case DType::kF64:  t.storage_ = std::vector<double>(n, 0.0); break;
      case DType::kI32:  t.storage_ = std::vector<int32_t>(n, 0); break;
      case DType::kI64:  t.storage_ = std::vector<int64_t>(n, 0); break;
      case DType::kBool: t.storage_ = std::vector<uint8_t>(n, 0); break;
    }
    return t;
}

Tensor
Tensor::full(DType dtype, const Shape& shape, double value)
{
    Tensor t = zeros(dtype, shape);
    for (int64_t i = 0; i < t.numel(); ++i)
        t.setScalar(i, value);
    return t;
}

Tensor
Tensor::random(DType dtype, const Shape& shape, Rng& rng, double lo,
               double hi)
{
    Tensor t = zeros(dtype, shape);
    for (int64_t i = 0; i < t.numel(); ++i) {
        if (dtype == DType::kBool) {
            t.setScalar(i, rng.chance(0.5) ? 1.0 : 0.0);
        } else if (isInt(dtype)) {
            t.setScalar(i, static_cast<double>(rng.uniformInt(
                               static_cast<int64_t>(lo),
                               static_cast<int64_t>(hi))));
        } else {
            t.setScalar(i, rng.uniformReal(lo, hi));
        }
    }
    return t;
}

bool
Tensor::defined() const
{
    const auto stored = std::visit(
        [](const auto& v) { return static_cast<int64_t>(v.size()); },
        storage_);
    return stored == numel();
}

double
Tensor::scalarAt(int64_t i) const
{
    NNSMITH_ASSERT(i >= 0 && i < numel(), "scalarAt out of range");
    return std::visit(
        [i](const auto& v) { return static_cast<double>(v[i]); }, storage_);
}

void
Tensor::setScalar(int64_t i, double value)
{
    NNSMITH_ASSERT(i >= 0 && i < numel(), "setScalar out of range");
    std::visit(
        [i, value](auto& v) {
            using Elem = typename std::decay_t<decltype(v)>::value_type;
            v[i] = static_cast<Elem>(value);
        },
        storage_);
}

bool
Tensor::hasNaNOrInf() const
{
    if (!isFloat(dtype_))
        return false;
    for (int64_t i = 0; i < numel(); ++i) {
        const double x = scalarAt(i);
        if (std::isnan(x) || std::isinf(x))
            return true;
    }
    return false;
}

Tensor
Tensor::reshaped(const Shape& shape) const
{
    NNSMITH_ASSERT(shape.numel() == numel(), "reshape numel mismatch: ",
                   shape_.toString(), " -> ", shape.toString());
    Tensor t = *this;
    t.shape_ = shape;
    return t;
}

Tensor
Tensor::castTo(DType target) const
{
    if (target == dtype_)
        return *this;
    Tensor t = zeros(target, shape_);
    for (int64_t i = 0; i < numel(); ++i) {
        double v = scalarAt(i);
        if (target == DType::kBool)
            v = (v != 0.0) ? 1.0 : 0.0;
        t.setScalar(i, v);
    }
    return t;
}

bool
Tensor::equals(const Tensor& other) const
{
    if (dtype_ != other.dtype_ || !(shape_ == other.shape_))
        return false;
    for (int64_t i = 0; i < numel(); ++i) {
        const double a = scalarAt(i);
        const double b = other.scalarAt(i);
        if (std::isnan(a) && std::isnan(b))
            continue;
        if (a != b)
            return false;
    }
    return true;
}

std::string
Tensor::toString(int64_t max_elems) const
{
    std::ostringstream os;
    os << dtypeName(dtype_) << shape_.toString() << "{";
    const int64_t n = std::min(numel(), max_elems);
    for (int64_t i = 0; i < n; ++i) {
        if (i)
            os << ", ";
        os << scalarAt(i);
    }
    if (numel() > max_elems)
        os << ", ...";
    os << "}";
    return os.str();
}

} // namespace nnsmith::tensor
