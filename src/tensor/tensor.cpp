#include "tensor/tensor.h"

#include <cassert>
#include <sstream>

#include "tensor/kernels.h"

namespace nnsmith::tensor {

namespace {

/** Defined element conversion between any two native element types. */
template <typename Dst, typename Src>
Dst
convertElem(Src v)
{
    if constexpr (std::is_floating_point_v<Src> && std::is_integral_v<Dst>) {
        const Dst out = saturateCast<Dst>(static_cast<double>(v));
        assert(!std::isnan(static_cast<double>(v)) || out == Dst{0});
        return out;
    } else {
        // int->int narrows modulo 2^n (C++20), int<->float and
        // float<->float are ordinary conversions.
        return static_cast<Dst>(v);
    }
}

} // namespace

Tensor
Tensor::zeros(DType dtype, const Shape& shape)
{
    Tensor t;
    t.dtype_ = dtype;
    t.shape_ = shape;
    const size_t n = static_cast<size_t>(shape.numel());
    switch (dtype) {
      case DType::kF32:
        t.storage_ = std::make_shared<Storage>(detail::Buffer<float>(n, 0.0f));
        break;
      case DType::kF64:
        t.storage_ = std::make_shared<Storage>(detail::Buffer<double>(n, 0.0));
        break;
      case DType::kI32:
        t.storage_ = std::make_shared<Storage>(detail::Buffer<int32_t>(n, 0));
        break;
      case DType::kI64:
        t.storage_ = std::make_shared<Storage>(detail::Buffer<int64_t>(n, 0));
        break;
      case DType::kBool:
        t.storage_ = std::make_shared<Storage>(detail::Buffer<uint8_t>(n, 0));
        break;
    }
    return t;
}

Tensor
Tensor::uninitialized(DType dtype, const Shape& shape)
{
    Tensor t;
    t.dtype_ = dtype;
    t.shape_ = shape;
    const size_t n = static_cast<size_t>(shape.numel());
    // Sized Buffer construction default-initializes the (trivial)
    // elements, i.e. leaves the allocation untouched.
    switch (dtype) {
      case DType::kF32:
        t.storage_ = std::make_shared<Storage>(detail::Buffer<float>(n));
        break;
      case DType::kF64:
        t.storage_ = std::make_shared<Storage>(detail::Buffer<double>(n));
        break;
      case DType::kI32:
        t.storage_ = std::make_shared<Storage>(detail::Buffer<int32_t>(n));
        break;
      case DType::kI64:
        t.storage_ = std::make_shared<Storage>(detail::Buffer<int64_t>(n));
        break;
      case DType::kBool:
        t.storage_ = std::make_shared<Storage>(detail::Buffer<uint8_t>(n));
        break;
    }
    return t;
}

Tensor
Tensor::full(DType dtype, const Shape& shape, double value)
{
    Tensor t = zeros(dtype, shape);
    for (int64_t i = 0; i < t.numel(); ++i)
        t.setScalar(i, value);
    return t;
}

Tensor
Tensor::random(DType dtype, const Shape& shape, Rng& rng, double lo,
               double hi)
{
    Tensor t = uninitialized(dtype, shape);
    dispatchDType(dtype, [&](auto tag) {
        using Tag = decltype(tag);
        auto* p = t.data<Tag>();
        const int64_t n = t.numel();
        if constexpr (std::is_same_v<Tag, bool>) {
            for (int64_t i = 0; i < n; ++i)
                p[i] = rng.chance(0.5) ? 1 : 0;
        } else if constexpr (std::is_integral_v<Tag>) {
            const auto ilo = static_cast<int64_t>(lo);
            const auto ihi = static_cast<int64_t>(hi);
            for (int64_t i = 0; i < n; ++i)
                p[i] = static_cast<Tag>(rng.uniformInt(ilo, ihi));
        } else {
            for (int64_t i = 0; i < n; ++i)
                p[i] = static_cast<Tag>(rng.uniformReal(lo, hi));
        }
    });
    return t;
}

bool
Tensor::defined() const
{
    if (storage_ == nullptr)
        return false;
    const auto stored = std::visit(
        [](const auto& v) { return static_cast<int64_t>(v.size()); },
        *storage_);
    return stored == numel();
}

double
Tensor::scalarAt(int64_t i) const
{
    NNSMITH_ASSERT(i >= 0 && i < numel(), "scalarAt out of range");
    NNSMITH_ASSERT(storage_ != nullptr, "tensor has no storage");
    return std::visit(
        [i](const auto& v) { return static_cast<double>(v[i]); },
        *storage_);
}

void
Tensor::setScalar(int64_t i, double value)
{
    NNSMITH_ASSERT(i >= 0 && i < numel(), "setScalar out of range");
    NNSMITH_ASSERT(storage_ != nullptr, "tensor has no storage");
    detach();
    std::visit(
        [i, value, this](auto& v) {
            using Elem = typename std::decay_t<decltype(v)>::value_type;
            if constexpr (std::is_floating_point_v<Elem>) {
                v[i] = static_cast<Elem>(value);
            } else if (dtype_ == DType::kBool) {
                v[i] = value != 0.0 ? 1 : 0;
            } else {
                // Non-finite / out-of-range doubles would be UB under a
                // plain cast; saturate with the documented rule.
                v[i] = saturateCast<Elem>(value);
            }
        },
        *storage_);
}

bool
Tensor::hasNaNOrInf() const
{
    if (!isFloat(dtype_))
        return false;
    return dispatchDType(dtype_, [&](auto tag) {
        using Tag = decltype(tag);
        if constexpr (std::is_floating_point_v<Tag>) {
            const auto* p = data<Tag>();
            const int64_t n = numel();
            for (int64_t i = 0; i < n; ++i) {
                if (!std::isfinite(p[i]))
                    return true;
            }
        }
        return false;
    });
}

Tensor
Tensor::reshaped(const Shape& shape) const
{
    NNSMITH_ASSERT(shape.numel() == numel(), "reshape numel mismatch: ",
                   shape_.toString(), " -> ", shape.toString());
    Tensor t = *this;
    t.shape_ = shape;
    return t;
}

Tensor
Tensor::castTo(DType target) const
{
    if (target == dtype_)
        return *this;
    Tensor t = uninitialized(target, shape_);
    const int64_t n = numel();
    dispatchDType(dtype_, [&](auto src_tag) {
        using Src = decltype(src_tag);
        const auto* src = data<Src>();
        if (target == DType::kBool) {
            auto* dst = t.data<bool>();
            for (int64_t i = 0; i < n; ++i)
                dst[i] = src[i] != 0 ? 1 : 0;
            return;
        }
        dispatchDType(target, [&](auto dst_tag) {
            using Dst = decltype(dst_tag);
            if constexpr (!std::is_same_v<Dst, bool>) {
                auto* dst = t.data<Dst>();
                for (int64_t i = 0; i < n; ++i)
                    dst[i] = convertElem<Dst>(src[i]);
            }
        });
    });
    return t;
}

bool
Tensor::equals(const Tensor& other) const
{
    if (dtype_ != other.dtype_ || !(shape_ == other.shape_))
        return false;
    return dispatchDType(dtype_, [&](auto tag) {
        using Tag = decltype(tag);
        const auto* a = data<Tag>();
        const auto* b = other.data<Tag>();
        const int64_t n = numel();
        for (int64_t i = 0; i < n; ++i) {
            if constexpr (std::is_floating_point_v<Tag>) {
                if (std::isnan(a[i]) && std::isnan(b[i]))
                    continue;
            }
            if (a[i] != b[i])
                return false;
        }
        return true;
    });
}

std::string
Tensor::toString(int64_t max_elems) const
{
    std::ostringstream os;
    os << dtypeName(dtype_) << shape_.toString() << "{";
    const int64_t n = std::min(numel(), max_elems);
    for (int64_t i = 0; i < n; ++i) {
        if (i)
            os << ", ";
        os << scalarAt(i);
    }
    if (numel() > max_elems)
        os << ", ...";
    os << "}";
    return os.str();
}

} // namespace nnsmith::tensor
