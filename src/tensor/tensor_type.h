/**
 * @file
 * Tensor types — the paper's "abstract tensors" (§3.1).
 *
 * During generation a TensorType's shape is a vector of symbolic integer
 * expressions; after the solver produces a model the shape is
 * concretized. Rank and dtype are always concrete, matching the paper's
 * abstraction exactly.
 */
#ifndef NNSMITH_TENSOR_TENSOR_TYPE_H
#define NNSMITH_TENSOR_TENSOR_TYPE_H

#include <string>
#include <vector>

#include "symbolic/expr.h"
#include "tensor/dtype.h"

namespace nnsmith::tensor {

using symbolic::Assignment;
using symbolic::ExprRef;

/** Fully concrete shape. */
struct Shape {
    std::vector<int64_t> dims;

    int rank() const { return static_cast<int>(dims.size()); }
    /** Total element count (1 for scalars/rank-0). */
    int64_t numel() const;
    bool operator==(const Shape& other) const = default;
    std::string toString() const;
};

/** Row-major strides for @p shape. */
std::vector<int64_t> rowMajorStrides(const Shape& shape);

/** An abstract tensor: dtype + (possibly symbolic) shape. */
class TensorType {
  public:
    TensorType() = default;
    TensorType(DType dtype, std::vector<ExprRef> shape);

    /** Build a fully concrete type. */
    static TensorType concrete(DType dtype, const Shape& shape);

    DType dtype() const { return dtype_; }
    int rank() const { return static_cast<int>(shape_.size()); }
    const std::vector<ExprRef>& shape() const { return shape_; }
    const ExprRef& dim(int i) const;

    /** True iff every dimension is a constant expression. */
    bool isConcrete() const;

    /** Concrete shape; requires isConcrete() or a covering model. */
    Shape concreteShape() const;
    Shape concreteShape(const Assignment& model) const;

    /** Substitute the model and return a concrete type. */
    TensorType concretized(const Assignment& model) const;

    /** Symbolic element count (product of dims; 1 for rank 0). */
    ExprRef numelExpr() const;

    std::string toString() const;

  private:
    DType dtype_ = DType::kF32;
    std::vector<ExprRef> shape_;
};

} // namespace nnsmith::tensor

#endif // NNSMITH_TENSOR_TENSOR_TYPE_H
