#include "tensor/tensor_type.h"

#include "support/logging.h"

namespace nnsmith::tensor {

using symbolic::Expr;

int64_t
Shape::numel() const
{
    int64_t n = 1;
    for (int64_t d : dims)
        n *= d;
    return n;
}

std::string
Shape::toString() const
{
    std::string s = "[";
    for (size_t i = 0; i < dims.size(); ++i) {
        if (i)
            s += ",";
        s += std::to_string(dims[i]);
    }
    return s + "]";
}

std::vector<int64_t>
rowMajorStrides(const Shape& shape)
{
    std::vector<int64_t> strides(shape.dims.size(), 1);
    for (int i = shape.rank() - 2; i >= 0; --i)
        strides[i] = strides[i + 1] * shape.dims[i + 1];
    return strides;
}

TensorType::TensorType(DType dtype, std::vector<ExprRef> shape)
    : dtype_(dtype), shape_(std::move(shape))
{
    for (const auto& d : shape_)
        NNSMITH_ASSERT(d != nullptr, "null dim in TensorType");
}

TensorType
TensorType::concrete(DType dtype, const Shape& shape)
{
    std::vector<ExprRef> dims;
    dims.reserve(shape.dims.size());
    for (int64_t d : shape.dims)
        dims.push_back(Expr::constant(d));
    return TensorType(dtype, std::move(dims));
}

const ExprRef&
TensorType::dim(int i) const
{
    NNSMITH_ASSERT(i >= 0 && i < rank(), "dim index ", i, " out of rank ",
                   rank());
    return shape_[static_cast<size_t>(i)];
}

bool
TensorType::isConcrete() const
{
    for (const auto& d : shape_) {
        if (!d->isConst())
            return false;
    }
    return true;
}

Shape
TensorType::concreteShape() const
{
    Shape s;
    s.dims.reserve(shape_.size());
    for (const auto& d : shape_) {
        NNSMITH_ASSERT(d->isConst(), "shape not concrete: ", toString());
        s.dims.push_back(d->value());
    }
    return s;
}

Shape
TensorType::concreteShape(const Assignment& model) const
{
    Shape s;
    s.dims.reserve(shape_.size());
    for (const auto& d : shape_)
        s.dims.push_back(symbolic::evaluate(d, model));
    return s;
}

TensorType
TensorType::concretized(const Assignment& model) const
{
    return concrete(dtype_, concreteShape(model));
}

ExprRef
TensorType::numelExpr() const
{
    ExprRef n = Expr::constant(1);
    for (const auto& d : shape_)
        n = n * d;
    return n;
}

std::string
TensorType::toString() const
{
    std::string s = dtypeName(dtype_) + "[";
    for (size_t i = 0; i < shape_.size(); ++i) {
        if (i)
            s += ",";
        s += symbolic::toString(shape_[i]);
    }
    return s + "]";
}

} // namespace nnsmith::tensor
