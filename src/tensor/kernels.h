/**
 * @file
 * Typed kernel layer: dispatch-once element loops over dense tensors.
 *
 * Every operator's reference kernel used to funnel each element through
 * `Tensor::scalarAt`/`setScalar`, paying a `std::variant` visit *twice
 * per element* and silently round-tripping integers through double
 * (which corrupts i64 values above 2^53 and turns integer
 * division-by-zero into undefined float->int casts). The helpers here
 * dispatch on the dtype *once per tensor* via `dispatchDType` and then
 * run a tight loop over typed pointers.
 *
 * Numeric semantics (see DESIGN.md "Numeric semantics"):
 *  - i32/i64 arithmetic is native two's-complement; Add/Sub/Mul wrap
 *    (use wrapAdd/wrapSub/wrapMul — signed overflow must not reach the
 *    hardware instruction, UBSan enforces this);
 *  - integer division truncates toward zero (C++ semantics); integer
 *    div/mod-by-zero yields 0 and poisons the output tensor, which the
 *    interpreter records exactly like NaN-poisoning via
 *    `ExecResult.firstInvalidNode`; INT_MIN / -1 wraps to INT_MIN;
 *  - casting a non-finite or out-of-range double to an integer type
 *    saturates (NaN -> 0), see `saturateCast`.
 *
 * Functors passed to the apply* templates are generic lambdas invoked
 * with the *native* element type (bool tensors use uint8_t storage);
 * they are instantiated for every dtype the kernel dispatches over, so
 * use `if constexpr` for type-dependent branches.
 */
#ifndef NNSMITH_TENSOR_KERNELS_H
#define NNSMITH_TENSOR_KERNELS_H

#include <cmath>
#include <limits>
#include <optional>
#include <type_traits>
#include <vector>

#include "tensor/tensor.h"

/**
 * Portable "please vectorize" hint for the contiguous sweeps below. No
 * intrinsics: clang's loop pragma only *requests* vectorization (the
 * compiler still proves legality), and for GCC we restrict ourselves to
 * an unroll hint — `GCC ivdep` would *assert* absence of loop-carried
 * dependences, which is unsound for functors that write a captured
 * poison flag.
 */
#if defined(__clang__)
#define NNSMITH_SIMD _Pragma("clang loop vectorize(enable)")
#elif defined(__GNUC__)
#define NNSMITH_SIMD _Pragma("GCC unroll 4")
#else
#define NNSMITH_SIMD
#endif

/** Non-aliasing pointer qualifier for the sweep kernels. */
#if defined(__clang__) || defined(__GNUC__)
#define NNSMITH_RESTRICT __restrict__
#else
#define NNSMITH_RESTRICT
#endif

namespace nnsmith::tensor {

/** Concrete numpy broadcast of two shapes (trailing-aligned). */
Shape broadcastShapes(const Shape& a, const Shape& b);

/**
 * Maps flat indices of a broadcast output to flat indices of one input
 * (stride-0 on broadcast dimensions). `isIdentity()` is true when the
 * input already has the output shape, enabling the no-remap fast path.
 */
class BroadcastIndexer {
  public:
    BroadcastIndexer(const Shape& in, const Shape& out);

    /** Input flat index corresponding to @p out_flat. */
    int64_t map(int64_t out_flat) const;

    /** True when map() is the identity (same shape, no broadcasting). */
    bool isIdentity() const { return identity_; }

    /** Per-output-dim input strides (0 on broadcast dims). */
    const std::vector<int64_t>& strides() const { return strides_; }

  private:
    std::vector<int64_t> outDims_;
    std::vector<int64_t> strides_; ///< input strides, 0 on broadcast dims
    bool identity_ = false;
};

/**
 * Precomputed run decomposition of a broadcast loop: the output is
 * walked as `numRuns()` contiguous runs of `innerLen()` elements (the
 * innermost output dimension). Per run, each input's base offset is
 * produced by an incremental odometer over the outer dims — replacing
 * `BroadcastIndexer::map`'s per-element div/mod chain with one add per
 * dimension per *run*. Within a run an input advances by
 * `innerStep(j)`, which is always 0 (broadcast innermost dim) or 1
 * (dense row-major innermost stride), so every run is a contiguous or
 * constant sweep.
 */
class BroadcastRunner {
  public:
    BroadcastRunner(const Shape& out,
                    const std::vector<const BroadcastIndexer*>& inputs);

    int64_t innerLen() const { return innerLen_; }
    int64_t numRuns() const { return numRuns_; }
    int64_t innerStep(size_t input) const { return innerSteps_[input]; }

    /**
     * Invoke `fn(out_base, bases)` once per run, where `bases[j]` is
     * input j's flat base offset for the run. For all k in
     * [0, innerLen()): input j's element for output `out_base + k`
     * lives at `bases[j] + k * innerStep(j)` — bit-identical to
     * `indexer.map(out_base + k)`.
     */
    template <typename Fn>
    void
    forEachRun(Fn&& fn) const
    {
        const size_t n_in = innerSteps_.size();
        const int n_outer = static_cast<int>(outerDims_.size());
        std::vector<int64_t> coord(static_cast<size_t>(n_outer), 0);
        std::vector<int64_t> bases(n_in, 0);
        int64_t out_base = 0;
        for (int64_t r = 0; r < numRuns_; ++r) {
            fn(out_base, bases.data());
            out_base += innerLen_;
            for (int i = n_outer - 1; i >= 0; --i) {
                auto& c = coord[static_cast<size_t>(i)];
                ++c;
                for (size_t j = 0; j < n_in; ++j)
                    bases[j] += strides_[j][static_cast<size_t>(i)];
                if (c < outerDims_[static_cast<size_t>(i)])
                    break;
                for (size_t j = 0; j < n_in; ++j)
                    bases[j] -= strides_[j][static_cast<size_t>(i)] * c;
                c = 0;
            }
        }
    }

  private:
    int64_t innerLen_ = 1;
    int64_t numRuns_ = 0;
    std::vector<int64_t> outerDims_;
    std::vector<int64_t> innerSteps_;          ///< [input], always 0 or 1
    std::vector<std::vector<int64_t>> strides_; ///< [input][outer dim]
};

namespace detail {

/** Native storage type for a dispatch tag (bool tensors store uint8_t). */
template <typename Tag>
using NativeT = std::conditional_t<std::is_same_v<Tag, bool>, uint8_t, Tag>;

// ---- contiguous sweeps (the SIMD fast paths) ------------------------------
//
// These take restrict-qualified raw pointers so the compiler may assume
// src and dst do not alias (guaranteed: apply* always writes a freshly
// allocated output).

template <typename T, typename Fn>
void
unarySweep(const T* NNSMITH_RESTRICT src, T* NNSMITH_RESTRICT dst,
           int64_t n, Fn&& fn)
{
    NNSMITH_SIMD
    for (int64_t i = 0; i < n; ++i)
        dst[i] = fn(src[i]);
}

template <typename T, typename D, typename Fn>
void
binarySweepIdentity(const T* NNSMITH_RESTRICT pa,
                    const T* NNSMITH_RESTRICT pb, D* NNSMITH_RESTRICT dst,
                    int64_t n, Fn&& fn)
{
    NNSMITH_SIMD
    for (int64_t i = 0; i < n; ++i)
        dst[i] = fn(pa[i], pb[i]);
}

/**
 * Broadcast combine decomposed into contiguous runs. Each run picks one
 * of four shapes depending on which operands advance: both (dense
 * sweep), one side constant (hoisted scalar), or both constant (one
 * functor evaluation replicated — valid because the sequential loop
 * would make `innerLen` calls with identical arguments, and the only
 * functor side effect, the poison flag, is idempotent).
 */
template <typename T, typename D, typename Fn>
void
binarySweepBroadcast(const BroadcastRunner& runner,
                     const T* NNSMITH_RESTRICT pa,
                     const T* NNSMITH_RESTRICT pb, D* NNSMITH_RESTRICT dst,
                     Fn&& fn)
{
    const int64_t len = runner.innerLen(); // > 0 whenever a run fires
    const int64_t sa = runner.innerStep(0);
    const int64_t sb = runner.innerStep(1);
    runner.forEachRun([&](int64_t out_base, const int64_t* bases) {
        const T* NNSMITH_RESTRICT ra = pa + bases[0];
        const T* NNSMITH_RESTRICT rb = pb + bases[1];
        D* NNSMITH_RESTRICT rd = dst + out_base;
        if (sa == 1 && sb == 1) {
            NNSMITH_SIMD
            for (int64_t k = 0; k < len; ++k)
                rd[k] = fn(ra[k], rb[k]);
        } else if (sa == 1) {
            const T y = rb[0];
            NNSMITH_SIMD
            for (int64_t k = 0; k < len; ++k)
                rd[k] = fn(ra[k], y);
        } else if (sb == 1) {
            const T x = ra[0];
            NNSMITH_SIMD
            for (int64_t k = 0; k < len; ++k)
                rd[k] = fn(x, rb[k]);
        } else {
            const D v = fn(ra[0], rb[0]);
            for (int64_t k = 0; k < len; ++k)
                rd[k] = v;
        }
    });
}

/**
 * Axis reduction over a dense row-major layout, decomposed as
 * [outer, axis_dim, inner]. inner == 1 reduces each slice contiguously;
 * otherwise `inner` accumulators advance together so the k-loop streams
 * whole rows (same k-ascending combine order as one slice at a time —
 * values are bit-identical, only the interleaving changes). An empty
 * axis (axis_dim == 0) writes `finalize(init, 0)` — the reduction
 * identity — to every output element.
 */
template <typename T, typename InitFn, typename CombineFn, typename FinalFn>
void
reduceSweep(const T* NNSMITH_RESTRICT src, T* NNSMITH_RESTRICT dst,
            int64_t outer, int64_t axis_dim, int64_t inner, InitFn&& init,
            CombineFn&& combine, FinalFn&& finalize)
{
    using Acc = decltype(init(T{}));
    if (inner == 1) {
        for (int64_t o = 0; o < outer; ++o) {
            const T* NNSMITH_RESTRICT row = src + o * axis_dim;
            Acc acc = init(T{});
            for (int64_t k = 0; k < axis_dim; ++k)
                acc = combine(acc, row[k]);
            dst[o] = finalize(acc, axis_dim);
        }
        return;
    }
    std::vector<Acc> accs(static_cast<size_t>(inner));
    for (int64_t o = 0; o < outer; ++o) {
        for (int64_t j = 0; j < inner; ++j)
            accs[static_cast<size_t>(j)] = init(T{});
        const T* slab = src + o * axis_dim * inner;
        for (int64_t k = 0; k < axis_dim; ++k) {
            const T* NNSMITH_RESTRICT row = slab + k * inner;
            Acc* NNSMITH_RESTRICT acc = accs.data();
            NNSMITH_SIMD
            for (int64_t j = 0; j < inner; ++j)
                acc[j] = combine(acc[j], row[j]);
        }
        T* NNSMITH_RESTRICT out_row = dst + o * inner;
        for (int64_t j = 0; j < inner; ++j)
            out_row[j] = finalize(accs[static_cast<size_t>(j)], axis_dim);
    }
}

} // namespace detail

// ---- defined scalar conversions -------------------------------------------

/**
 * Double -> integer conversion with defined out-of-range behavior:
 * NaN maps to 0, anything at or beyond the representable range
 * saturates to the type's min/max. In-range values truncate toward
 * zero as usual.
 */
template <typename To>
To
saturateCast(double v)
{
    static_assert(std::is_integral_v<To>);
    if (std::isnan(v))
        return To{0};
    // min() is a power of two, so both bounds are exact doubles; max()
    // is not (for i64), hence the >= comparison against -min.
    constexpr double kLo = static_cast<double>(std::numeric_limits<To>::min());
    constexpr double kHi = -kLo;
    if (v >= kHi)
        return std::numeric_limits<To>::max();
    if (v < kLo)
        return std::numeric_limits<To>::min();
    return static_cast<To>(v);
}

/** Wrapping signed arithmetic (two's complement, no UB on overflow). */
template <typename T>
T
wrapAdd(T a, T b)
{
    using U = std::make_unsigned_t<T>;
    return static_cast<T>(static_cast<U>(a) + static_cast<U>(b));
}

template <typename T>
T
wrapSub(T a, T b)
{
    using U = std::make_unsigned_t<T>;
    return static_cast<T>(static_cast<U>(a) - static_cast<U>(b));
}

template <typename T>
T
wrapMul(T a, T b)
{
    using U = std::make_unsigned_t<T>;
    return static_cast<T>(static_cast<U>(a) * static_cast<U>(b));
}

/**
 * Truncating integer division with defined edge cases: b == 0 yields 0
 * and sets @p poison; the INT_MIN / -1 overflow wraps to INT_MIN.
 */
template <typename T>
T
wrapDiv(T a, T b, bool& poison)
{
    static_assert(std::is_integral_v<T>);
    if (b == 0) {
        poison = true;
        return T{0};
    }
    if constexpr (std::is_signed_v<T>) {
        if (a == std::numeric_limits<T>::min() && b == static_cast<T>(-1))
            return a;
    }
    return static_cast<T>(a / b);
}

/** Integer remainder matching wrapDiv (b == 0 yields 0 and poisons). */
template <typename T>
T
wrapMod(T a, T b, bool& poison)
{
    static_assert(std::is_integral_v<T>);
    if (b == 0) {
        poison = true;
        return T{0};
    }
    if constexpr (std::is_signed_v<T>) {
        if (a == std::numeric_limits<T>::min() && b == static_cast<T>(-1))
            return T{0};
    }
    return static_cast<T>(a % b);
}

// ---- dispatch-once element loops ------------------------------------------

/**
 * Elementwise map with out dtype == in dtype:
 * `out[i] = fn(in[i])`, fn invoked with the native element type.
 */
template <typename Fn>
Tensor
applyUnary(const Tensor& in, Fn&& fn)
{
    return dispatchDType(in.dtype(), [&](auto tag) {
        using Tag = decltype(tag);
        Tensor out = Tensor::uninitialized(in.dtype(), in.shape());
        detail::unarySweep(in.data<Tag>(), out.data<Tag>(), in.numel(), fn);
        return out;
    });
}

/**
 * Batched applyUnary: one dtype dispatch for all lanes, then the sweep
 * per lane. Lane l's output is bit-identical to `applyUnary(*ins[l])`.
 */
template <typename Fn>
std::vector<Tensor>
applyUnaryBatched(const std::vector<const Tensor*>& ins, Fn&& fn)
{
    std::vector<Tensor> outs;
    outs.reserve(ins.size());
    if (ins.empty())
        return outs;
    dispatchDType(ins[0]->dtype(), [&](auto tag) {
        using Tag = decltype(tag);
        for (const Tensor* in : ins) {
            NNSMITH_ASSERT(in->dtype() == ins[0]->dtype(),
                           "applyUnaryBatched lane dtype mismatch");
            Tensor out = Tensor::uninitialized(in->dtype(), in->shape());
            detail::unarySweep(in->data<Tag>(), out.data<Tag>(), in->numel(),
                               fn);
            outs.push_back(std::move(out));
        }
    });
    return outs;
}

/**
 * Broadcasting elementwise combine with out dtype == lhs dtype:
 * `out[i] = fn(a[ia(i)], b[ib(i)])`. Inputs must share a dtype.
 */
template <typename Fn>
Tensor
applyBinary(const Tensor& a, const Tensor& b, Fn&& fn)
{
    NNSMITH_ASSERT(a.dtype() == b.dtype(), "applyBinary dtype mismatch");
    const Shape out_shape = broadcastShapes(a.shape(), b.shape());
    const BroadcastIndexer ia(a.shape(), out_shape);
    const BroadcastIndexer ib(b.shape(), out_shape);
    const bool identity = ia.isIdentity() && ib.isIdentity();
    std::optional<BroadcastRunner> runner;
    if (!identity)
        runner.emplace(out_shape,
                       std::vector<const BroadcastIndexer*>{&ia, &ib});
    return dispatchDType(a.dtype(), [&](auto tag) {
        using Tag = decltype(tag);
        Tensor out = Tensor::uninitialized(a.dtype(), out_shape);
        const auto* pa = a.data<Tag>();
        const auto* pb = b.data<Tag>();
        auto* dst = out.data<Tag>();
        if (identity)
            detail::binarySweepIdentity(pa, pb, dst, out.numel(), fn);
        else
            detail::binarySweepBroadcast(*runner, pa, pb, dst, fn);
        return out;
    });
}

/**
 * Batched applyBinary: shapes, indexers, the run plan and the dtype
 * dispatch are computed once (lanes share shape/dtype by construction —
 * same graph node), then each lane runs the same sweep.
 * `lane_done(l, out)` fires after lane l's sweep, before the next
 * lane's — the hook the Div/Mod caller uses to harvest and reset its
 * captured poison flag so lanes stay independent.
 */
template <typename Fn, typename LaneFn>
std::vector<Tensor>
applyBinaryBatched(const std::vector<const Tensor*>& as,
                   const std::vector<const Tensor*>& bs, Fn&& fn,
                   LaneFn&& lane_done)
{
    NNSMITH_ASSERT(as.size() == bs.size(), "applyBinaryBatched lane count");
    std::vector<Tensor> outs;
    outs.reserve(as.size());
    if (as.empty())
        return outs;
    NNSMITH_ASSERT(as[0]->dtype() == bs[0]->dtype(),
                   "applyBinary dtype mismatch");
    const Shape out_shape = broadcastShapes(as[0]->shape(), bs[0]->shape());
    const BroadcastIndexer ia(as[0]->shape(), out_shape);
    const BroadcastIndexer ib(bs[0]->shape(), out_shape);
    const bool identity = ia.isIdentity() && ib.isIdentity();
    std::optional<BroadcastRunner> runner;
    if (!identity)
        runner.emplace(out_shape,
                       std::vector<const BroadcastIndexer*>{&ia, &ib});
    dispatchDType(as[0]->dtype(), [&](auto tag) {
        using Tag = decltype(tag);
        for (size_t l = 0; l < as.size(); ++l) {
            NNSMITH_ASSERT(as[l]->shape() == as[0]->shape() &&
                               bs[l]->shape() == bs[0]->shape() &&
                               as[l]->dtype() == as[0]->dtype() &&
                               bs[l]->dtype() == bs[0]->dtype(),
                           "applyBinaryBatched lane shape/dtype mismatch");
            Tensor out = Tensor::uninitialized(as[0]->dtype(), out_shape);
            const auto* pa = as[l]->data<Tag>();
            const auto* pb = bs[l]->data<Tag>();
            auto* dst = out.data<Tag>();
            if (identity)
                detail::binarySweepIdentity(pa, pb, dst, out.numel(), fn);
            else
                detail::binarySweepBroadcast(*runner, pa, pb, dst, fn);
            lane_done(l, out);
            outs.push_back(std::move(out));
        }
    });
    return outs;
}

template <typename Fn>
std::vector<Tensor>
applyBinaryBatched(const std::vector<const Tensor*>& as,
                   const std::vector<const Tensor*>& bs, Fn&& fn)
{
    return applyBinaryBatched(as, bs, fn, [](size_t, Tensor&) {});
}

/**
 * Broadcasting comparison with bool output:
 * `out[i] = fn(a[ia(i)], b[ib(i)]) ? 1 : 0`. Inputs share a dtype.
 */
template <typename Fn>
Tensor
applyCompare(const Tensor& a, const Tensor& b, Fn&& fn)
{
    NNSMITH_ASSERT(a.dtype() == b.dtype(), "applyCompare dtype mismatch");
    const Shape out_shape = broadcastShapes(a.shape(), b.shape());
    const BroadcastIndexer ia(a.shape(), out_shape);
    const BroadcastIndexer ib(b.shape(), out_shape);
    const bool identity = ia.isIdentity() && ib.isIdentity();
    std::optional<BroadcastRunner> runner;
    if (!identity)
        runner.emplace(out_shape,
                       std::vector<const BroadcastIndexer*>{&ia, &ib});
    return dispatchDType(a.dtype(), [&](auto tag) {
        using Tag = decltype(tag);
        Tensor out = Tensor::uninitialized(DType::kBool, out_shape);
        const auto* pa = a.data<Tag>();
        const auto* pb = b.data<Tag>();
        auto* dst = out.data<bool>();
        const auto cfn = [&fn](auto x, auto y) -> uint8_t {
            return fn(x, y) ? 1 : 0;
        };
        if (identity)
            detail::binarySweepIdentity(pa, pb, dst, out.numel(), cfn);
        else
            detail::binarySweepBroadcast(*runner, pa, pb, dst, cfn);
        return out;
    });
}

/** Batched applyCompare (see applyBinaryBatched for the lane contract). */
template <typename Fn>
std::vector<Tensor>
applyCompareBatched(const std::vector<const Tensor*>& as,
                    const std::vector<const Tensor*>& bs, Fn&& fn)
{
    NNSMITH_ASSERT(as.size() == bs.size(), "applyCompareBatched lane count");
    std::vector<Tensor> outs;
    outs.reserve(as.size());
    if (as.empty())
        return outs;
    NNSMITH_ASSERT(as[0]->dtype() == bs[0]->dtype(),
                   "applyCompare dtype mismatch");
    const Shape out_shape = broadcastShapes(as[0]->shape(), bs[0]->shape());
    const BroadcastIndexer ia(as[0]->shape(), out_shape);
    const BroadcastIndexer ib(bs[0]->shape(), out_shape);
    const bool identity = ia.isIdentity() && ib.isIdentity();
    std::optional<BroadcastRunner> runner;
    if (!identity)
        runner.emplace(out_shape,
                       std::vector<const BroadcastIndexer*>{&ia, &ib});
    dispatchDType(as[0]->dtype(), [&](auto tag) {
        using Tag = decltype(tag);
        const auto cfn = [&fn](auto x, auto y) -> uint8_t {
            return fn(x, y) ? 1 : 0;
        };
        for (size_t l = 0; l < as.size(); ++l) {
            NNSMITH_ASSERT(as[l]->shape() == as[0]->shape() &&
                               bs[l]->shape() == bs[0]->shape() &&
                               as[l]->dtype() == as[0]->dtype() &&
                               bs[l]->dtype() == bs[0]->dtype(),
                           "applyCompareBatched lane shape/dtype mismatch");
            Tensor out = Tensor::uninitialized(DType::kBool, out_shape);
            const auto* pa = as[l]->data<Tag>();
            const auto* pb = bs[l]->data<Tag>();
            auto* dst = out.data<bool>();
            if (identity)
                detail::binarySweepIdentity(pa, pb, dst, out.numel(), cfn);
            else
                detail::binarySweepBroadcast(*runner, pa, pb, dst, cfn);
            outs.push_back(std::move(out));
        }
    });
    return outs;
}

/**
 * Enumerate the 1-D slices of @p shape along @p axis:
 * `fn(base_offset)` is called once per slice; elements of the slice
 * live at `base + k * stride(axis)` for k in [0, dims[axis]).
 */
template <typename Fn>
void
forEachSlice(const Shape& shape, int axis, Fn&& fn)
{
    NNSMITH_ASSERT(axis >= 0 && axis < shape.rank(),
                   "forEachSlice axis ", axis, " out of range for rank ",
                   shape.rank());
    const auto strides = rowMajorStrides(shape);
    // Number of slices is the product of the non-axis dims — NOT
    // numel()/axis_dim, which collapses to 0 for an empty axis and
    // would silently skip every slice.
    int64_t n_slices = 1;
    for (int i = 0; i < shape.rank(); ++i) {
        if (i != axis)
            n_slices *= shape.dims[static_cast<size_t>(i)];
    }
    for (int64_t s = 0; s < n_slices; ++s) {
        int64_t rem = s;
        int64_t base = 0;
        for (int i = shape.rank() - 1; i >= 0; --i) {
            if (i == axis)
                continue;
            const int64_t dim = shape.dims[static_cast<size_t>(i)];
            base += (rem % dim) * strides[static_cast<size_t>(i)];
            rem /= dim;
        }
        fn(s, base);
    }
}

/** `shape.dims[axis]` with the same rank guard as forEachSlice — for
 *  callers that need the axis length before walking the slices. */
inline int64_t
axisDim(const Shape& shape, int axis)
{
    NNSMITH_ASSERT(axis >= 0 && axis < shape.rank(),
                   "forEachSlice axis ", axis, " out of range for rank ",
                   shape.rank());
    return shape.dims[static_cast<size_t>(axis)];
}

namespace detail {

/** [outer, axis, inner] decomposition shared by the reduce kernels. */
struct ReduceDims {
    Shape outShape;
    int64_t outer = 1;
    int64_t axisDim = 0;
    int64_t inner = 1;
};

inline ReduceDims
reduceDims(const Shape& in, int axis, bool keepdims)
{
    NNSMITH_ASSERT(axis >= 0 && axis < in.rank(), "applyReduce axis ", axis,
                   " out of range for rank ", in.rank());
    ReduceDims d;
    d.axisDim = in.dims[static_cast<size_t>(axis)];
    for (int i = 0; i < in.rank(); ++i) {
        const int64_t dim = in.dims[static_cast<size_t>(i)];
        if (i == axis) {
            if (keepdims)
                d.outShape.dims.push_back(1);
            continue;
        }
        if (i < axis)
            d.outer *= dim;
        else
            d.inner *= dim;
        d.outShape.dims.push_back(dim);
    }
    return d;
}

} // namespace detail

/**
 * Axis reduction. For each slice along @p axis:
 * `acc = init(tag)`, then `acc = combine(acc, v)` over the slice
 * (ascending), then `out[slice] = finalize(acc, axis_dim)`. Output
 * dtype == input dtype. An empty axis yields `finalize(init, 0)` —
 * the reduction identity — in every output element.
 */
template <typename InitFn, typename CombineFn, typename FinalFn>
Tensor
applyReduce(const Tensor& in, int axis, bool keepdims, InitFn&& init,
            CombineFn&& combine, FinalFn&& finalize)
{
    const detail::ReduceDims d = detail::reduceDims(in.shape(), axis,
                                                    keepdims);
    return dispatchDType(in.dtype(), [&](auto tag) {
        using Tag = decltype(tag);
        Tensor out = Tensor::uninitialized(in.dtype(), d.outShape);
        detail::reduceSweep(in.data<Tag>(), out.data<Tag>(), d.outer,
                            d.axisDim, d.inner, init, combine, finalize);
        return out;
    });
}

/** Batched applyReduce: one plan + dispatch, one sweep per lane. */
template <typename InitFn, typename CombineFn, typename FinalFn>
std::vector<Tensor>
applyReduceBatched(const std::vector<const Tensor*>& ins, int axis,
                   bool keepdims, InitFn&& init, CombineFn&& combine,
                   FinalFn&& finalize)
{
    std::vector<Tensor> outs;
    outs.reserve(ins.size());
    if (ins.empty())
        return outs;
    const detail::ReduceDims d = detail::reduceDims(ins[0]->shape(), axis,
                                                    keepdims);
    dispatchDType(ins[0]->dtype(), [&](auto tag) {
        using Tag = decltype(tag);
        for (const Tensor* in : ins) {
            NNSMITH_ASSERT(in->shape() == ins[0]->shape() &&
                               in->dtype() == ins[0]->dtype(),
                           "applyReduceBatched lane shape/dtype mismatch");
            Tensor out = Tensor::uninitialized(in->dtype(), d.outShape);
            detail::reduceSweep(in->data<Tag>(), out.data<Tag>(), d.outer,
                                d.axisDim, d.inner, init, combine, finalize);
            outs.push_back(std::move(out));
        }
    });
    return outs;
}

/**
 * Broadcasting three-way select: out dtype/shape follow the value
 * operands; @p cond is a bool tensor.
 */
Tensor applyWhere(const Tensor& cond, const Tensor& on_true,
                  const Tensor& on_false);

/**
 * Sum-reduce @p grad (shaped like a broadcast output) back to
 * @p in_shape — the reverse of broadcasting, used by backward kernels.
 */
Tensor sumToShape(const Tensor& grad, const Shape& in_shape);

} // namespace nnsmith::tensor

#endif // NNSMITH_TENSOR_KERNELS_H
