/**
 * @file
 * Typed kernel layer: dispatch-once element loops over dense tensors.
 *
 * Every operator's reference kernel used to funnel each element through
 * `Tensor::scalarAt`/`setScalar`, paying a `std::variant` visit *twice
 * per element* and silently round-tripping integers through double
 * (which corrupts i64 values above 2^53 and turns integer
 * division-by-zero into undefined float->int casts). The helpers here
 * dispatch on the dtype *once per tensor* via `dispatchDType` and then
 * run a tight loop over typed pointers.
 *
 * Numeric semantics (see DESIGN.md "Numeric semantics"):
 *  - i32/i64 arithmetic is native two's-complement; Add/Sub/Mul wrap
 *    (use wrapAdd/wrapSub/wrapMul — signed overflow must not reach the
 *    hardware instruction, UBSan enforces this);
 *  - integer division truncates toward zero (C++ semantics); integer
 *    div/mod-by-zero yields 0 and poisons the output tensor, which the
 *    interpreter records exactly like NaN-poisoning via
 *    `ExecResult.firstInvalidNode`; INT_MIN / -1 wraps to INT_MIN;
 *  - casting a non-finite or out-of-range double to an integer type
 *    saturates (NaN -> 0), see `saturateCast`.
 *
 * Functors passed to the apply* templates are generic lambdas invoked
 * with the *native* element type (bool tensors use uint8_t storage);
 * they are instantiated for every dtype the kernel dispatches over, so
 * use `if constexpr` for type-dependent branches.
 */
#ifndef NNSMITH_TENSOR_KERNELS_H
#define NNSMITH_TENSOR_KERNELS_H

#include <cmath>
#include <limits>
#include <type_traits>

#include "tensor/tensor.h"

namespace nnsmith::tensor {

/** Concrete numpy broadcast of two shapes (trailing-aligned). */
Shape broadcastShapes(const Shape& a, const Shape& b);

/**
 * Maps flat indices of a broadcast output to flat indices of one input
 * (stride-0 on broadcast dimensions). `isIdentity()` is true when the
 * input already has the output shape, enabling the no-remap fast path.
 */
class BroadcastIndexer {
  public:
    BroadcastIndexer(const Shape& in, const Shape& out);

    /** Input flat index corresponding to @p out_flat. */
    int64_t map(int64_t out_flat) const;

    /** True when map() is the identity (same shape, no broadcasting). */
    bool isIdentity() const { return identity_; }

  private:
    std::vector<int64_t> outDims_;
    std::vector<int64_t> strides_; ///< input strides, 0 on broadcast dims
    bool identity_ = false;
};

namespace detail {

/** Native storage type for a dispatch tag (bool tensors store uint8_t). */
template <typename Tag>
using NativeT = std::conditional_t<std::is_same_v<Tag, bool>, uint8_t, Tag>;

} // namespace detail

// ---- defined scalar conversions -------------------------------------------

/**
 * Double -> integer conversion with defined out-of-range behavior:
 * NaN maps to 0, anything at or beyond the representable range
 * saturates to the type's min/max. In-range values truncate toward
 * zero as usual.
 */
template <typename To>
To
saturateCast(double v)
{
    static_assert(std::is_integral_v<To>);
    if (std::isnan(v))
        return To{0};
    // min() is a power of two, so both bounds are exact doubles; max()
    // is not (for i64), hence the >= comparison against -min.
    constexpr double kLo = static_cast<double>(std::numeric_limits<To>::min());
    constexpr double kHi = -kLo;
    if (v >= kHi)
        return std::numeric_limits<To>::max();
    if (v < kLo)
        return std::numeric_limits<To>::min();
    return static_cast<To>(v);
}

/** Wrapping signed arithmetic (two's complement, no UB on overflow). */
template <typename T>
T
wrapAdd(T a, T b)
{
    using U = std::make_unsigned_t<T>;
    return static_cast<T>(static_cast<U>(a) + static_cast<U>(b));
}

template <typename T>
T
wrapSub(T a, T b)
{
    using U = std::make_unsigned_t<T>;
    return static_cast<T>(static_cast<U>(a) - static_cast<U>(b));
}

template <typename T>
T
wrapMul(T a, T b)
{
    using U = std::make_unsigned_t<T>;
    return static_cast<T>(static_cast<U>(a) * static_cast<U>(b));
}

/**
 * Truncating integer division with defined edge cases: b == 0 yields 0
 * and sets @p poison; the INT_MIN / -1 overflow wraps to INT_MIN.
 */
template <typename T>
T
wrapDiv(T a, T b, bool& poison)
{
    static_assert(std::is_integral_v<T>);
    if (b == 0) {
        poison = true;
        return T{0};
    }
    if constexpr (std::is_signed_v<T>) {
        if (a == std::numeric_limits<T>::min() && b == static_cast<T>(-1))
            return a;
    }
    return static_cast<T>(a / b);
}

/** Integer remainder matching wrapDiv (b == 0 yields 0 and poisons). */
template <typename T>
T
wrapMod(T a, T b, bool& poison)
{
    static_assert(std::is_integral_v<T>);
    if (b == 0) {
        poison = true;
        return T{0};
    }
    if constexpr (std::is_signed_v<T>) {
        if (a == std::numeric_limits<T>::min() && b == static_cast<T>(-1))
            return T{0};
    }
    return static_cast<T>(a % b);
}

// ---- dispatch-once element loops ------------------------------------------

/**
 * Elementwise map with out dtype == in dtype:
 * `out[i] = fn(in[i])`, fn invoked with the native element type.
 */
template <typename Fn>
Tensor
applyUnary(const Tensor& in, Fn&& fn)
{
    return dispatchDType(in.dtype(), [&](auto tag) {
        using Tag = decltype(tag);
        Tensor out = Tensor::zeros(in.dtype(), in.shape());
        const auto* src = in.data<Tag>();
        auto* dst = out.data<Tag>();
        const int64_t n = in.numel();
        for (int64_t i = 0; i < n; ++i)
            dst[i] = fn(src[i]);
        return out;
    });
}

/**
 * Broadcasting elementwise combine with out dtype == lhs dtype:
 * `out[i] = fn(a[ia(i)], b[ib(i)])`. Inputs must share a dtype.
 */
template <typename Fn>
Tensor
applyBinary(const Tensor& a, const Tensor& b, Fn&& fn)
{
    NNSMITH_ASSERT(a.dtype() == b.dtype(), "applyBinary dtype mismatch");
    const Shape out_shape = broadcastShapes(a.shape(), b.shape());
    return dispatchDType(a.dtype(), [&](auto tag) {
        using Tag = decltype(tag);
        Tensor out = Tensor::zeros(a.dtype(), out_shape);
        const auto* pa = a.data<Tag>();
        const auto* pb = b.data<Tag>();
        auto* dst = out.data<Tag>();
        const int64_t n = out.numel();
        const BroadcastIndexer ia(a.shape(), out_shape);
        const BroadcastIndexer ib(b.shape(), out_shape);
        if (ia.isIdentity() && ib.isIdentity()) {
            for (int64_t i = 0; i < n; ++i)
                dst[i] = fn(pa[i], pb[i]);
        } else {
            for (int64_t i = 0; i < n; ++i)
                dst[i] = fn(pa[ia.map(i)], pb[ib.map(i)]);
        }
        return out;
    });
}

/**
 * Broadcasting comparison with bool output:
 * `out[i] = fn(a[ia(i)], b[ib(i)]) ? 1 : 0`. Inputs share a dtype.
 */
template <typename Fn>
Tensor
applyCompare(const Tensor& a, const Tensor& b, Fn&& fn)
{
    NNSMITH_ASSERT(a.dtype() == b.dtype(), "applyCompare dtype mismatch");
    const Shape out_shape = broadcastShapes(a.shape(), b.shape());
    return dispatchDType(a.dtype(), [&](auto tag) {
        using Tag = decltype(tag);
        Tensor out = Tensor::zeros(DType::kBool, out_shape);
        const auto* pa = a.data<Tag>();
        const auto* pb = b.data<Tag>();
        auto* dst = out.data<bool>();
        const int64_t n = out.numel();
        const BroadcastIndexer ia(a.shape(), out_shape);
        const BroadcastIndexer ib(b.shape(), out_shape);
        if (ia.isIdentity() && ib.isIdentity()) {
            for (int64_t i = 0; i < n; ++i)
                dst[i] = fn(pa[i], pb[i]) ? 1 : 0;
        } else {
            for (int64_t i = 0; i < n; ++i)
                dst[i] = fn(pa[ia.map(i)], pb[ib.map(i)]) ? 1 : 0;
        }
        return out;
    });
}

/**
 * Enumerate the 1-D slices of @p shape along @p axis:
 * `fn(base_offset)` is called once per slice; elements of the slice
 * live at `base + k * stride(axis)` for k in [0, dims[axis]).
 */
template <typename Fn>
void
forEachSlice(const Shape& shape, int axis, Fn&& fn)
{
    const auto strides = rowMajorStrides(shape);
    const int64_t axis_dim = shape.dims[static_cast<size_t>(axis)];
    const int64_t n_slices =
        shape.numel() / std::max<int64_t>(axis_dim, 1);
    for (int64_t s = 0; s < n_slices; ++s) {
        int64_t rem = s;
        int64_t base = 0;
        for (int i = shape.rank() - 1; i >= 0; --i) {
            if (i == axis)
                continue;
            const int64_t dim = shape.dims[static_cast<size_t>(i)];
            base += (rem % dim) * strides[static_cast<size_t>(i)];
            rem /= dim;
        }
        fn(s, base);
    }
}

/**
 * Axis reduction. For each slice along @p axis:
 * `acc = init(tag)`, then `acc = combine(acc, v)` over the slice, then
 * `out[slice] = finalize(acc, axis_dim)`. Output dtype == input dtype.
 */
template <typename InitFn, typename CombineFn, typename FinalFn>
Tensor
applyReduce(const Tensor& in, int axis, bool keepdims, InitFn&& init,
            CombineFn&& combine, FinalFn&& finalize)
{
    Shape out_shape;
    for (int i = 0; i < in.rank(); ++i) {
        if (i == axis) {
            if (keepdims)
                out_shape.dims.push_back(1);
            continue;
        }
        out_shape.dims.push_back(in.shape().dims[static_cast<size_t>(i)]);
    }
    return dispatchDType(in.dtype(), [&](auto tag) {
        using Tag = decltype(tag);
        Tensor out = Tensor::zeros(in.dtype(), out_shape);
        const auto* src = in.data<Tag>();
        auto* dst = out.data<Tag>();
        const auto strides = rowMajorStrides(in.shape());
        const int64_t axis_dim =
            in.shape().dims[static_cast<size_t>(axis)];
        const int64_t stride = strides[static_cast<size_t>(axis)];
        forEachSlice(in.shape(), axis, [&](int64_t s, int64_t base) {
            auto acc = init(detail::NativeT<Tag>{});
            for (int64_t k = 0; k < axis_dim; ++k)
                acc = combine(acc, src[base + k * stride]);
            dst[s] = finalize(acc, axis_dim);
        });
        return out;
    });
}

/**
 * Broadcasting three-way select: out dtype/shape follow the value
 * operands; @p cond is a bool tensor.
 */
Tensor applyWhere(const Tensor& cond, const Tensor& on_true,
                  const Tensor& on_false);

/**
 * Sum-reduce @p grad (shaped like a broadcast output) back to
 * @p in_shape — the reverse of broadcasting, used by backward kernels.
 */
Tensor sumToShape(const Tensor& grad, const Shape& in_shape);

} // namespace nnsmith::tensor

#endif // NNSMITH_TENSOR_KERNELS_H
