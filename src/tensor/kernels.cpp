#include "tensor/kernels.h"

namespace nnsmith::tensor {

Shape
broadcastShapes(const Shape& a, const Shape& b)
{
    const int ra = a.rank();
    const int rb = b.rank();
    const int out_rank = std::max(ra, rb);
    Shape out;
    out.dims.assign(static_cast<size_t>(out_rank), 1);
    for (int pos = 0; pos < out_rank; ++pos) {
        const int ia = ra - 1 - pos;
        const int ib = rb - 1 - pos;
        const int64_t da = ia >= 0 ? a.dims[static_cast<size_t>(ia)] : 1;
        const int64_t db = ib >= 0 ? b.dims[static_cast<size_t>(ib)] : 1;
        NNSMITH_ASSERT(da == db || da == 1 || db == 1,
                       "incompatible broadcast ", a.toString(), " vs ",
                       b.toString());
        out.dims[static_cast<size_t>(out_rank - 1 - pos)] = std::max(da, db);
    }
    return out;
}

BroadcastIndexer::BroadcastIndexer(const Shape& in, const Shape& out)
    : outDims_(out.dims)
{
    const auto in_strides = rowMajorStrides(in);
    const int ro = out.rank();
    const int ri = in.rank();
    strides_.assign(static_cast<size_t>(ro), 0);
    for (int pos = 0; pos < ro; ++pos) {
        const int io = ro - 1 - pos;
        const int ii = ri - 1 - pos;
        if (ii < 0)
            continue;
        if (in.dims[static_cast<size_t>(ii)] == 1 &&
            out.dims[static_cast<size_t>(io)] != 1)
            continue; // broadcast: stride 0
        strides_[static_cast<size_t>(io)] =
            in_strides[static_cast<size_t>(ii)];
    }
    identity_ = in.dims == out.dims;
}

int64_t
BroadcastIndexer::map(int64_t out_flat) const
{
    int64_t in_flat = 0;
    for (int i = static_cast<int>(outDims_.size()) - 1; i >= 0; --i) {
        const int64_t dim = outDims_[static_cast<size_t>(i)];
        const int64_t coord = out_flat % dim;
        out_flat /= dim;
        in_flat += coord * strides_[static_cast<size_t>(i)];
    }
    return in_flat;
}

Tensor
applyWhere(const Tensor& cond, const Tensor& on_true,
           const Tensor& on_false)
{
    NNSMITH_ASSERT(cond.dtype() == DType::kBool, "applyWhere needs bool cond");
    NNSMITH_ASSERT(on_true.dtype() == on_false.dtype(),
                   "applyWhere value dtype mismatch");
    const Shape out_shape = broadcastShapes(
        broadcastShapes(cond.shape(), on_true.shape()), on_false.shape());
    return dispatchDType(on_true.dtype(), [&](auto tag) {
        using Tag = decltype(tag);
        Tensor out = Tensor::zeros(on_true.dtype(), out_shape);
        const uint8_t* pc = cond.data<bool>();
        const auto* pt = on_true.data<Tag>();
        const auto* pf = on_false.data<Tag>();
        auto* dst = out.data<Tag>();
        const int64_t n = out.numel();
        const BroadcastIndexer ic(cond.shape(), out_shape);
        const BroadcastIndexer it(on_true.shape(), out_shape);
        const BroadcastIndexer iff(on_false.shape(), out_shape);
        if (ic.isIdentity() && it.isIdentity() && iff.isIdentity()) {
            for (int64_t i = 0; i < n; ++i)
                dst[i] = pc[i] != 0 ? pt[i] : pf[i];
        } else {
            for (int64_t i = 0; i < n; ++i)
                dst[i] = pc[ic.map(i)] != 0 ? pt[it.map(i)]
                                            : pf[iff.map(i)];
        }
        return out;
    });
}

Tensor
sumToShape(const Tensor& grad, const Shape& in_shape)
{
    return dispatchDType(grad.dtype(), [&](auto tag) {
        using Tag = decltype(tag);
        Tensor out = Tensor::zeros(grad.dtype(), in_shape);
        const auto* src = grad.data<Tag>();
        auto* dst = out.data<Tag>();
        const int64_t n = grad.numel();
        const BroadcastIndexer indexer(in_shape, grad.shape());
        if (indexer.isIdentity()) {
            for (int64_t i = 0; i < n; ++i)
                dst[i] = src[i];
        } else if constexpr (std::is_integral_v<detail::NativeT<Tag>>) {
            for (int64_t i = 0; i < n; ++i) {
                const int64_t j = indexer.map(i);
                dst[j] = wrapAdd(dst[j], src[i]);
            }
        } else {
            for (int64_t i = 0; i < n; ++i)
                dst[indexer.map(i)] += src[i];
        }
        return out;
    });
}

} // namespace nnsmith::tensor
