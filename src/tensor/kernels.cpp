#include "tensor/kernels.h"

namespace nnsmith::tensor {

Shape
broadcastShapes(const Shape& a, const Shape& b)
{
    const int ra = a.rank();
    const int rb = b.rank();
    const int out_rank = std::max(ra, rb);
    Shape out;
    out.dims.assign(static_cast<size_t>(out_rank), 1);
    for (int pos = 0; pos < out_rank; ++pos) {
        const int ia = ra - 1 - pos;
        const int ib = rb - 1 - pos;
        const int64_t da = ia >= 0 ? a.dims[static_cast<size_t>(ia)] : 1;
        const int64_t db = ib >= 0 ? b.dims[static_cast<size_t>(ib)] : 1;
        NNSMITH_ASSERT(da == db || da == 1 || db == 1,
                       "incompatible broadcast ", a.toString(), " vs ",
                       b.toString());
        out.dims[static_cast<size_t>(out_rank - 1 - pos)] = std::max(da, db);
    }
    return out;
}

BroadcastIndexer::BroadcastIndexer(const Shape& in, const Shape& out)
    : outDims_(out.dims)
{
    const auto in_strides = rowMajorStrides(in);
    const int ro = out.rank();
    const int ri = in.rank();
    strides_.assign(static_cast<size_t>(ro), 0);
    for (int pos = 0; pos < ro; ++pos) {
        const int io = ro - 1 - pos;
        const int ii = ri - 1 - pos;
        if (ii < 0)
            continue;
        if (in.dims[static_cast<size_t>(ii)] == 1 &&
            out.dims[static_cast<size_t>(io)] != 1)
            continue; // broadcast: stride 0
        strides_[static_cast<size_t>(io)] =
            in_strides[static_cast<size_t>(ii)];
    }
    identity_ = in.dims == out.dims;
}

int64_t
BroadcastIndexer::map(int64_t out_flat) const
{
    int64_t in_flat = 0;
    for (int i = static_cast<int>(outDims_.size()) - 1; i >= 0; --i) {
        const int64_t dim = outDims_[static_cast<size_t>(i)];
        const int64_t coord = out_flat % dim;
        out_flat /= dim;
        in_flat += coord * strides_[static_cast<size_t>(i)];
    }
    return in_flat;
}

BroadcastRunner::BroadcastRunner(
    const Shape& out, const std::vector<const BroadcastIndexer*>& inputs)
{
    const int rank = out.rank();
    innerLen_ = rank > 0 ? out.dims[static_cast<size_t>(rank - 1)] : 1;
    numRuns_ = innerLen_ > 0 ? out.numel() / innerLen_ : 0;
    if (rank > 0)
        outerDims_.assign(out.dims.begin(), out.dims.end() - 1);
    innerSteps_.reserve(inputs.size());
    strides_.reserve(inputs.size());
    for (const BroadcastIndexer* idx : inputs) {
        const auto& s = idx->strides();
        NNSMITH_ASSERT(static_cast<int>(s.size()) == rank,
                       "BroadcastRunner indexer rank mismatch");
        // The innermost input stride of a dense row-major tensor is 1,
        // so after broadcast masking the innermost step is 0 or 1 —
        // which is what makes every run a contiguous or constant sweep.
        innerSteps_.push_back(rank > 0 ? s[static_cast<size_t>(rank - 1)]
                                       : 0);
        if (rank > 0)
            strides_.emplace_back(s.begin(), s.end() - 1);
        else
            strides_.emplace_back();
    }
}

Tensor
applyWhere(const Tensor& cond, const Tensor& on_true,
           const Tensor& on_false)
{
    NNSMITH_ASSERT(cond.dtype() == DType::kBool, "applyWhere needs bool cond");
    NNSMITH_ASSERT(on_true.dtype() == on_false.dtype(),
                   "applyWhere value dtype mismatch");
    const Shape out_shape = broadcastShapes(
        broadcastShapes(cond.shape(), on_true.shape()), on_false.shape());
    const BroadcastIndexer ic(cond.shape(), out_shape);
    const BroadcastIndexer it(on_true.shape(), out_shape);
    const BroadcastIndexer iff(on_false.shape(), out_shape);
    const bool identity =
        ic.isIdentity() && it.isIdentity() && iff.isIdentity();
    std::optional<BroadcastRunner> runner;
    if (!identity)
        runner.emplace(out_shape, std::vector<const BroadcastIndexer*>{
                                      &ic, &it, &iff});
    return dispatchDType(on_true.dtype(), [&](auto tag) {
        using Tag = decltype(tag);
        Tensor out = Tensor::uninitialized(on_true.dtype(), out_shape);
        const uint8_t* pc = cond.data<bool>();
        const auto* pt = on_true.data<Tag>();
        const auto* pf = on_false.data<Tag>();
        auto* dst = out.data<Tag>();
        const int64_t n = out.numel();
        if (identity) {
            NNSMITH_SIMD
            for (int64_t i = 0; i < n; ++i)
                dst[i] = pc[i] != 0 ? pt[i] : pf[i];
        } else {
            const int64_t len = runner->innerLen();
            const int64_t sc = runner->innerStep(0);
            const int64_t st = runner->innerStep(1);
            const int64_t sf = runner->innerStep(2);
            runner->forEachRun([&](int64_t out_base, const int64_t* bases) {
                const uint8_t* rc = pc + bases[0];
                const auto* rt = pt + bases[1];
                const auto* rf = pf + bases[2];
                auto* rd = dst + out_base;
                for (int64_t k = 0; k < len; ++k)
                    rd[k] = rc[k * sc] != 0 ? rt[k * st] : rf[k * sf];
            });
        }
        return out;
    });
}

Tensor
sumToShape(const Tensor& grad, const Shape& in_shape)
{
    return dispatchDType(grad.dtype(), [&](auto tag) {
        using Tag = decltype(tag);
        Tensor out = Tensor::zeros(grad.dtype(), in_shape);
        const auto* src = grad.data<Tag>();
        auto* dst = out.data<Tag>();
        const int64_t n = grad.numel();
        const BroadcastIndexer indexer(in_shape, grad.shape());
        if (indexer.isIdentity()) {
            for (int64_t i = 0; i < n; ++i)
                dst[i] = src[i];
        } else if constexpr (std::is_integral_v<detail::NativeT<Tag>>) {
            for (int64_t i = 0; i < n; ++i) {
                const int64_t j = indexer.map(i);
                dst[j] = wrapAdd(dst[j], src[i]);
            }
        } else {
            for (int64_t i = 0; i < n; ++i)
                dst[indexer.map(i)] += src[i];
        }
        return out;
    });
}

} // namespace nnsmith::tensor
