/**
 * @file
 * Element data types of tensors (a tensor's "type" in the paper is its
 * shape plus its element dtype, §2.1).
 */
#ifndef NNSMITH_TENSOR_DTYPE_H
#define NNSMITH_TENSOR_DTYPE_H

#include <cstdint>
#include <string>
#include <vector>

namespace nnsmith::tensor {

/** Supported element types. */
enum class DType : uint8_t {
    kF32,
    kF64,
    kI32,
    kI64,
    kBool,
};

/** All dtypes, useful for spec matrices. */
const std::vector<DType>& allDTypes();

/** The floating dtypes {f32, f64}. */
const std::vector<DType>& floatDTypes();

/** The integer dtypes {i32, i64}. */
const std::vector<DType>& intDTypes();

/** {f32, f64, i32, i64} (everything but bool). */
const std::vector<DType>& numericDTypes();

/** True for kF32/kF64. */
bool isFloat(DType t);

/** True for kI32/kI64. */
bool isInt(DType t);

/** Size of one element in bytes. */
size_t dtypeSize(DType t);

/** Canonical name, e.g. "f32". */
std::string dtypeName(DType t);

/** Inverse of dtypeName; throws FatalError on unknown names. */
DType dtypeFromName(const std::string& name);

} // namespace nnsmith::tensor

#endif // NNSMITH_TENSOR_DTYPE_H
