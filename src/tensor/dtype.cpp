#include "tensor/dtype.h"

#include "support/logging.h"

namespace nnsmith::tensor {

const std::vector<DType>&
allDTypes()
{
    static const std::vector<DType> kAll = {
        DType::kF32, DType::kF64, DType::kI32, DType::kI64, DType::kBool};
    return kAll;
}

const std::vector<DType>&
floatDTypes()
{
    static const std::vector<DType> kFloats = {DType::kF32, DType::kF64};
    return kFloats;
}

const std::vector<DType>&
intDTypes()
{
    static const std::vector<DType> kInts = {DType::kI32, DType::kI64};
    return kInts;
}

const std::vector<DType>&
numericDTypes()
{
    static const std::vector<DType> kNumeric = {
        DType::kF32, DType::kF64, DType::kI32, DType::kI64};
    return kNumeric;
}

bool
isFloat(DType t)
{
    return t == DType::kF32 || t == DType::kF64;
}

bool
isInt(DType t)
{
    return t == DType::kI32 || t == DType::kI64;
}

size_t
dtypeSize(DType t)
{
    switch (t) {
      case DType::kF32: return 4;
      case DType::kF64: return 8;
      case DType::kI32: return 4;
      case DType::kI64: return 8;
      case DType::kBool: return 1;
    }
    NNSMITH_PANIC("bad DType");
}

std::string
dtypeName(DType t)
{
    switch (t) {
      case DType::kF32: return "f32";
      case DType::kF64: return "f64";
      case DType::kI32: return "i32";
      case DType::kI64: return "i64";
      case DType::kBool: return "bool";
    }
    NNSMITH_PANIC("bad DType");
}

DType
dtypeFromName(const std::string& name)
{
    for (DType t : allDTypes()) {
        if (dtypeName(t) == name)
            return t;
    }
    fatal("unknown dtype name: " + name);
}

} // namespace nnsmith::tensor
