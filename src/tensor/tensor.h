/**
 * @file
 * Dense host tensors used by the reference interpreter, autodiff, and
 * the simulated backends.
 */
#ifndef NNSMITH_TENSOR_TENSOR_H
#define NNSMITH_TENSOR_TENSOR_H

#include <cmath>
#include <variant>
#include <vector>

#include "support/logging.h"
#include "support/rng.h"
#include "tensor/tensor_type.h"

namespace nnsmith::tensor {

namespace detail {

template <typename T> struct DTypeOf;
template <> struct DTypeOf<float>   { static constexpr DType value = DType::kF32; };
template <> struct DTypeOf<double>  { static constexpr DType value = DType::kF64; };
template <> struct DTypeOf<int32_t> { static constexpr DType value = DType::kI32; };
template <> struct DTypeOf<int64_t> { static constexpr DType value = DType::kI64; };
template <> struct DTypeOf<bool>    { static constexpr DType value = DType::kBool; };

} // namespace detail

/**
 * A dense row-major tensor with dtype-tagged storage.
 *
 * Bool tensors are stored as uint8_t (0/1) to keep contiguous access
 * (std::vector<bool> has no data()).
 */
class Tensor {
  public:
    Tensor() : dtype_(DType::kF32) {}

    /** Zero-initialized tensor. */
    static Tensor zeros(DType dtype, const Shape& shape);

    /** Tensor filled with @p value (cast to dtype). */
    static Tensor full(DType dtype, const Shape& shape, double value);

    /** Build a rank-1/“vector” tensor from values. */
    template <typename T>
    static Tensor
    fromVector(const std::vector<T>& values)
    {
        Shape s{{static_cast<int64_t>(values.size())}};
        Tensor t = zeros(detail::DTypeOf<T>::value, s);
        auto* p = t.data<T>();
        for (size_t i = 0; i < values.size(); ++i)
            p[i] = values[i];
        return t;
    }

    /** Build from shape and flat values. */
    template <typename T>
    static Tensor
    fromValues(const Shape& shape, const std::vector<T>& values)
    {
        NNSMITH_ASSERT(static_cast<int64_t>(values.size()) == shape.numel(),
                       "fromValues size mismatch");
        Tensor t = zeros(detail::DTypeOf<T>::value, shape);
        auto* p = t.data<T>();
        for (size_t i = 0; i < values.size(); ++i)
            p[i] = values[i];
        return t;
    }

    /** Uniform random values in [lo, hi) (numeric) or fair coin (bool). */
    static Tensor random(DType dtype, const Shape& shape, Rng& rng,
                         double lo, double hi);

    /**
     * False for the default-constructed sentinel (used to mean "no
     * gradient" in backward results); true for any materialized tensor.
     */
    bool defined() const;

    DType dtype() const { return dtype_; }
    const Shape& shape() const { return shape_; }
    int rank() const { return shape_.rank(); }
    int64_t numel() const { return shape_.numel(); }

    /** Typed raw pointer; panics on dtype mismatch. Bool -> uint8_t. */
    template <typename T>
    T*
    data()
    {
        using Stored = std::conditional_t<std::is_same_v<T, bool>, uint8_t, T>;
        NNSMITH_ASSERT(detail::DTypeOf<T>::value == dtype_,
                       "tensor dtype mismatch");
        return reinterpret_cast<T*>(
            std::get<std::vector<Stored>>(storage_).data());
    }

    template <typename T>
    const T*
    data() const
    {
        return const_cast<Tensor*>(this)->data<T>();
    }

    /** Element read as double, whatever the dtype (flat index). */
    double scalarAt(int64_t i) const;

    /** Element write from double, cast to the dtype (flat index). */
    void setScalar(int64_t i, double value);

    /** Any element NaN or Inf? (floating dtypes only; false otherwise) */
    bool hasNaNOrInf() const;

    /** Reinterpret with a new shape of equal numel (shares nothing). */
    Tensor reshaped(const Shape& shape) const;

    /** Element-type conversion (used by the Cast operator). */
    Tensor castTo(DType target) const;

    /** Bit-exact equality of dtype, shape and payload. */
    bool equals(const Tensor& other) const;

    std::string toString(int64_t max_elems = 16) const;

  private:
    using Storage = std::variant<std::vector<float>, std::vector<double>,
                                 std::vector<int32_t>, std::vector<int64_t>,
                                 std::vector<uint8_t>>;

    DType dtype_;
    Shape shape_;
    Storage storage_;
};

/**
 * Invoke @p fn with a C++ type tag matching @p dtype:
 * `dispatchDType(dt, [&](auto tag) { using T = decltype(tag); ... });`
 */
template <typename Fn>
decltype(auto)
dispatchDType(DType dtype, Fn&& fn)
{
    switch (dtype) {
      case DType::kF32:  return fn(float{});
      case DType::kF64:  return fn(double{});
      case DType::kI32:  return fn(int32_t{});
      case DType::kI64:  return fn(int64_t{});
      case DType::kBool: return fn(bool{});
    }
    NNSMITH_PANIC("bad DType");
}

} // namespace nnsmith::tensor

#endif // NNSMITH_TENSOR_TENSOR_H
