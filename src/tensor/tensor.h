/**
 * @file
 * Dense host tensors used by the reference interpreter, autodiff, and
 * the simulated backends.
 */
#ifndef NNSMITH_TENSOR_TENSOR_H
#define NNSMITH_TENSOR_TENSOR_H

#include <cmath>
#include <memory>
#include <variant>
#include <vector>

#include "support/logging.h"
#include "support/rng.h"
#include "tensor/tensor_type.h"

namespace nnsmith::tensor {

namespace detail {

template <typename T> struct DTypeOf;
template <> struct DTypeOf<float>   { static constexpr DType value = DType::kF32; };
template <> struct DTypeOf<double>  { static constexpr DType value = DType::kF64; };
template <> struct DTypeOf<int32_t> { static constexpr DType value = DType::kI32; };
template <> struct DTypeOf<int64_t> { static constexpr DType value = DType::kI64; };
template <> struct DTypeOf<bool>    { static constexpr DType value = DType::kBool; };

/**
 * std::allocator whose parameterless construct() default-initializes
 * instead of value-initializing — for the trivial element types used
 * here that means the memory is left untouched. Backs
 * Tensor::uninitialized so kernels that provably write every element
 * (tensor/kernels.h apply*) skip the zero-fill pass Tensor::zeros
 * pays on the hottest allocation path.
 */
template <typename T>
struct DefaultInitAllocator : std::allocator<T> {
    template <typename U> struct rebind {
        using other = DefaultInitAllocator<U>;
    };
    template <typename U>
    void
    construct(U* p) noexcept(std::is_nothrow_default_constructible_v<U>)
    {
        ::new (static_cast<void*>(p)) U;
    }
    template <typename U, typename... Args>
    void
    construct(U* p, Args&&... args)
    {
        ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
    }
};

/** Payload vector type: value semantics of std::vector, allocation
 *  semantics (uninitialized on sized construction) of the allocator. */
template <typename T>
using Buffer = std::vector<T, DefaultInitAllocator<T>>;

} // namespace detail

/**
 * A dense row-major tensor with dtype-tagged storage.
 *
 * Bool tensors are stored as uint8_t (0/1) to keep contiguous access
 * (std::vector<bool> has no data()).
 *
 * Storage is copy-on-write: copies share the payload until a mutable
 * access (`data<T>()` non-const, `setScalar`) detaches it. The
 * interpreter keeps every intermediate in maps and hands ops value
 * vectors — with eager copies that was a full memcpy per edge.
 */
class Tensor {
  public:
    Tensor() : dtype_(DType::kF32) {}

    /** Zero-initialized tensor. */
    static Tensor zeros(DType dtype, const Shape& shape);

    /**
     * Tensor whose payload is allocated but NOT initialized. Only for
     * callers that provably write every element before any read (the
     * kernel apply* helpers); reading an element first is UB exactly
     * like reading from malloc.
     */
    static Tensor uninitialized(DType dtype, const Shape& shape);

    /** Tensor filled with @p value (cast to dtype). */
    static Tensor full(DType dtype, const Shape& shape, double value);

    /** Build a rank-1/“vector” tensor from values. */
    template <typename T>
    static Tensor
    fromVector(const std::vector<T>& values)
    {
        Shape s{{static_cast<int64_t>(values.size())}};
        Tensor t = zeros(detail::DTypeOf<T>::value, s);
        auto* p = t.data<T>();
        for (size_t i = 0; i < values.size(); ++i)
            p[i] = values[i];
        return t;
    }

    /** Build from shape and flat values. */
    template <typename T>
    static Tensor
    fromValues(const Shape& shape, const std::vector<T>& values)
    {
        NNSMITH_ASSERT(static_cast<int64_t>(values.size()) == shape.numel(),
                       "fromValues size mismatch");
        Tensor t = zeros(detail::DTypeOf<T>::value, shape);
        auto* p = t.data<T>();
        for (size_t i = 0; i < values.size(); ++i)
            p[i] = values[i];
        return t;
    }

    /** Uniform random values in [lo, hi) (numeric) or fair coin (bool). */
    static Tensor random(DType dtype, const Shape& shape, Rng& rng,
                         double lo, double hi);

    /**
     * False for the default-constructed sentinel (used to mean "no
     * gradient" in backward results); true for any materialized tensor.
     */
    bool defined() const;

    DType dtype() const { return dtype_; }
    const Shape& shape() const { return shape_; }
    int rank() const { return shape_.rank(); }
    int64_t numel() const { return shape_.numel(); }

    /**
     * Typed raw pointer; panics on dtype mismatch. `data<bool>()`
     * returns the stored `uint8_t*` directly — reinterpreting the
     * uint8_t storage as `bool*` would violate strict aliasing. The
     * non-const overload detaches shared storage (copy-on-write).
     */
    template <typename T>
    auto
    data() -> std::conditional_t<std::is_same_v<T, bool>, uint8_t, T>*
    {
        using Stored = std::conditional_t<std::is_same_v<T, bool>, uint8_t, T>;
        NNSMITH_ASSERT(detail::DTypeOf<T>::value == dtype_,
                       "tensor dtype mismatch");
        NNSMITH_ASSERT(storage_ != nullptr, "tensor has no storage");
        detach();
        return std::get<detail::Buffer<Stored>>(*storage_).data();
    }

    template <typename T>
    auto
    data() const
        -> const std::conditional_t<std::is_same_v<T, bool>, uint8_t, T>*
    {
        using Stored = std::conditional_t<std::is_same_v<T, bool>, uint8_t, T>;
        NNSMITH_ASSERT(detail::DTypeOf<T>::value == dtype_,
                       "tensor dtype mismatch");
        NNSMITH_ASSERT(storage_ != nullptr, "tensor has no storage");
        return std::get<detail::Buffer<Stored>>(*storage_).data();
    }

    /**
     * Element read as double, whatever the dtype (flat index).
     * Cold-path convenience: i64 values above 2^53 lose precision, so
     * hot loops and integer-exact code must use data<T>() (see
     * tensor/kernels.h).
     */
    double scalarAt(int64_t i) const;

    /**
     * Element write from double, cast to the dtype (flat index).
     * Defined for every double: integer dtypes saturate on
     * out-of-range/Inf and map NaN to 0 (see kernels.h saturateCast);
     * bool normalizes to 0/1.
     */
    void setScalar(int64_t i, double value);

    /** Any element NaN or Inf? (floating dtypes only; false otherwise) */
    bool hasNaNOrInf() const;

    /**
     * Poison marker for defined-but-invalid integer results (integer
     * div/mod-by-zero substitutes 0 and marks the output poisoned).
     * The interpreter records poisoned outputs in
     * `ExecResult.firstInvalidNode` exactly like NaN/Inf.
     */
    bool poisoned() const { return poisoned_; }
    void markPoisoned() { poisoned_ = true; }

    /** Reinterpret with a new shape of equal numel (shares nothing). */
    Tensor reshaped(const Shape& shape) const;

    /** Element-type conversion (used by the Cast operator). */
    Tensor castTo(DType target) const;

    /** Bit-exact equality of dtype, shape and payload. */
    bool equals(const Tensor& other) const;

    std::string toString(int64_t max_elems = 16) const;

  private:
    using Storage =
        std::variant<detail::Buffer<float>, detail::Buffer<double>,
                     detail::Buffer<int32_t>, detail::Buffer<int64_t>,
                     detail::Buffer<uint8_t>>;

    /** Clone shared storage before a mutation (copy-on-write). */
    void
    detach()
    {
        if (storage_ != nullptr && storage_.use_count() > 1)
            storage_ = std::make_shared<Storage>(*storage_);
    }

    DType dtype_;
    Shape shape_;
    std::shared_ptr<Storage> storage_;
    bool poisoned_ = false;
};

/**
 * Invoke @p fn with a C++ type tag matching @p dtype:
 * `dispatchDType(dt, [&](auto tag) { using T = decltype(tag); ... });`
 */
template <typename Fn>
decltype(auto)
dispatchDType(DType dtype, Fn&& fn)
{
    switch (dtype) {
      case DType::kF32:  return fn(float{});
      case DType::kF64:  return fn(double{});
      case DType::kI32:  return fn(int32_t{});
      case DType::kI64:  return fn(int64_t{});
      case DType::kBool: return fn(bool{});
    }
    NNSMITH_PANIC("bad DType");
}

} // namespace nnsmith::tensor

#endif // NNSMITH_TENSOR_TENSOR_H
