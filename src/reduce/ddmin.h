/**
 * @file
 * The shared delta-debugging (ddmin) core of the reduction subsystem.
 *
 * Both reducers — GraphReducer over computation-graph nodes and
 * PassSequenceReducer over TIR pass lists (reduce/reducer.h) — are the
 * same algorithm applied to different item domains: Zeller &
 * Hildebrandt's ddmin over the index set {0..n-1}, where the
 * caller-supplied predicate answers "does keeping exactly these items
 * still reproduce the flagged defect fingerprint?". The core is fully
 * deterministic (no RNG, no wall clock), which is what lets the
 * campaign layer minimize flagged cases inside sharded workers while
 * keeping merged results byte-identical for any shard count (see
 * DESIGN.md "Reduction & reporting").
 */
#ifndef NNSMITH_REDUCE_DDMIN_H
#define NNSMITH_REDUCE_DDMIN_H

#include <cstddef>
#include <functional>
#include <vector>

namespace nnsmith::reduce {

/**
 * Predicate over a candidate kept-item set, given as sorted ascending
 * indices into the original item list. Must be deterministic: ddmin
 * may evaluate the same subset twice across granularity changes.
 */
using KeepPredicate = std::function<bool(const std::vector<size_t>&)>;

/** Bookkeeping of one ddmin run (bench + test instrumentation). */
struct DdminStats {
    size_t testsRun = 0;      ///< predicate evaluations performed
    size_t originalSize = 0;  ///< n
    size_t minimizedSize = 0; ///< size of the returned subset
    bool budgetExhausted = false; ///< stopped early on maxTests
};

/**
 * Minimize {0..n-1} under @p still_fails: returns a subset (sorted
 * ascending) on which the predicate holds and from which no single
 * ddmin chunk can be removed (1-minimal at the final granularity).
 *
 * Preconditions: still_fails({0..n-1}) must be true — the caller
 * checks that the full set reproduces the defect before reducing
 * (reduce::minimizeBug does). The empty set is never tested.
 *
 * @param max_tests stop after this many predicate evaluations and
 *        return the best subset found so far (0 = unlimited). The cut
 *        is by evaluation count, not time, so it is deterministic.
 */
std::vector<size_t> ddmin(size_t n, const KeepPredicate& still_fails,
                          DdminStats* stats = nullptr,
                          size_t max_tests = 0);

} // namespace nnsmith::reduce

#endif // NNSMITH_REDUCE_DDMIN_H
