#include "reduce/reducer.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "backends/graph_pass.h"
#include "difftest/compare.h"
#include "difftest/oracle.h"
#include "graph/validate.h"
#include "obs/trace.h"
#include "onnx/exporter.h"
#include "support/logging.h"
#include "tirlite/tir_passes.h"

namespace nnsmith::reduce {

using backends::BackendError;
using backends::DefectRegistry;
using backends::Symptom;
using backends::System;
using fuzz::BugRecord;

std::string
crashKindOfKey(const std::string& dedup_key)
{
    const auto first = dedup_key.find('|');
    if (first == std::string::npos)
        return "";
    const auto second = dedup_key.find('|', first + 1);
    if (second == std::string::npos)
        return "";
    return dedup_key.substr(second + 1);
}

namespace {

std::string
crashKindOf(const BugRecord& bug)
{
    return crashKindOfKey(bug.dedupKey);
}

/**
 * The semantic defects in @p defects attributable to @p backend: its
 * own system's plus the exporter's (whose corrupted metadata every
 * backend faithfully mis-executes). Crash-symptom defects are excluded
 * — a crash identifies itself through its crash kind instead.
 */
std::set<std::string>
relevantSemanticDefects(const std::vector<std::string>& defects,
                        const std::string& backend)
{
    std::set<std::string> out;
    const auto& registry = DefectRegistry::instance();
    for (const auto& id : defects) {
        const auto* defect = registry.find(id);
        if (defect == nullptr || defect->symptom != Symptom::kSemantic)
            continue;
        const bool mine =
            defect->system == System::kExporter ||
            (backend == "OrtLite" && defect->system == System::kOrtLite) ||
            (backend == "TVMLite" && defect->system == System::kTvmLite) ||
            (backend == "TrtLite" && defect->system == System::kTrtLite);
        if (mine)
            out.insert(id);
    }
    return out;
}

/** What must keep firing while the repro shrinks. */
struct FingerprintTarget {
    std::string backend;
    std::string kind;
    std::string crashKind;           ///< crash / export-crash only
    std::set<std::string> relevant;  ///< wrong-result only
};

FingerprintTarget
targetOf(const BugRecord& bug)
{
    FingerprintTarget target;
    target.backend = bug.backend;
    target.kind = bug.kind;
    if (bug.kind == "wrong-result")
        target.relevant = relevantSemanticDefects(bug.defects, bug.backend);
    else
        target.crashKind = crashKindOf(bug);
    return target;
}

/** The bug record derived from @p result matching @p target, if any. */
std::optional<BugRecord>
matchOf(const difftest::CaseResult& result,
        const FingerprintTarget& target)
{
    for (auto& bug : fuzz::bugsFromCase(result)) {
        if (bug.backend != target.backend || bug.kind != target.kind)
            continue;
        if (target.kind == "wrong-result") {
            if (relevantSemanticDefects(bug.defects, bug.backend) ==
                target.relevant)
                return bug;
        } else if (crashKindOf(bug) == target.crashKind) {
            return bug;
        }
    }
    return std::nullopt;
}

bool
caseMatches(const difftest::CaseResult& result,
            const FingerprintTarget& target)
{
    return matchOf(result, target).has_value();
}

// ---- GraphReducer ---------------------------------------------------------

/** Close a kept op-node set over producers so every kept op's inputs
 *  are produced by kept ops or leaves. */
std::set<int>
closeOverProducers(const graph::Graph& graph, std::set<int> keep)
{
    std::vector<int> work(keep.begin(), keep.end());
    while (!work.empty()) {
        const int id = work.back();
        work.pop_back();
        for (int v : graph.node(id).inputs) {
            const int producer = graph.value(v).producer;
            const auto& node = graph.node(producer);
            if (node.kind == graph::NodeKind::kOp && !node.dead &&
                keep.insert(producer).second)
                work.push_back(producer);
        }
    }
    return keep;
}

struct GraphCase {
    graph::Graph graph;
    exec::LeafValues leaves;
};

/**
 * Rebuild the subgraph keeping exactly @p keep_ops (producer-closed)
 * plus the leaves they consume, remapping leaf bindings. Ops are
 * shared with the original graph (immutable once concrete).
 */
GraphCase
extractSubgraph(const graph::Graph& graph, const exec::LeafValues& leaves,
                const std::set<int>& keep_ops)
{
    GraphCase out;
    std::map<int, int> value_map; // original value id -> rebuilt id
    std::set<int> needed_leaves;
    for (int id : keep_ops) {
        for (int v : graph.node(id).inputs) {
            const auto& producer = graph.node(graph.value(v).producer);
            if (producer.kind != graph::NodeKind::kOp)
                needed_leaves.insert(producer.id);
        }
    }
    for (int id : graph.topoOrder()) {
        const auto& node = graph.node(id);
        if (node.kind != graph::NodeKind::kOp) {
            if (needed_leaves.count(id) == 0)
                continue;
            const int old_value = node.outputs[0];
            const int new_value = out.graph.addLeaf(
                node.kind, graph.value(old_value).type,
                graph.value(old_value).name);
            value_map[old_value] = new_value;
            const auto bound = leaves.find(old_value);
            if (bound != leaves.end())
                out.leaves.emplace(new_value, bound->second);
        } else if (keep_ops.count(id) != 0) {
            std::vector<int> inputs;
            inputs.reserve(node.inputs.size());
            for (int v : node.inputs)
                inputs.push_back(value_map.at(v));
            std::vector<tensor::TensorType> output_types;
            output_types.reserve(node.outputs.size());
            for (int v : node.outputs)
                output_types.push_back(graph.value(v).type);
            const int new_id =
                out.graph.addOp(node.op, inputs, output_types);
            const auto& rebuilt = out.graph.node(new_id);
            for (size_t i = 0; i < node.outputs.size(); ++i)
                value_map[node.outputs[i]] = rebuilt.outputs[i];
        }
    }
    return out;
}

/** Live op-node ids in deterministic (topological) order. */
std::vector<int>
opNodesInOrder(const graph::Graph& graph)
{
    std::vector<int> ops;
    for (int id : graph.topoOrder()) {
        if (graph.node(id).kind == graph::NodeKind::kOp)
            ops.push_back(id);
    }
    return ops;
}

/**
 * Memoized candidate evaluations, shared between the bug records of
 * one flagged case (they all carry the same GraphRepro but pin
 * different fingerprints, so their ddmins probe overlapping kept-sets;
 * each oracle run is a full export + compile + execute). Keyed by the
 * producer-closed kept op-node set; nullptr records a candidate whose
 * rebuilt subgraph failed validation.
 */
using CaseCache =
    std::map<std::vector<int>,
             std::shared_ptr<const difftest::CaseResult>>;

bool
minimizeGraphBug(BugRecord& bug,
                 const std::vector<backends::Backend*>& backends,
                 const ReduceOptions& options,
                 const difftest::CaseResult& full_result,
                 CaseCache& cache)
{
    const auto& repro = *bug.graphRepro;
    const FingerprintTarget target = targetOf(bug);
    // A wrong-result with no attributable semantic defect would make
    // the predicate match any miscompare; leave such records raw.
    if (target.kind == "wrong-result" && target.relevant.empty())
        return false;

    // The full case must reproduce its own fingerprint (deterministic
    // oracle; a mismatch means the record is not reducible as-is).
    if (!caseMatches(full_result, target))
        return false;

    const std::vector<int> ops = opNodesInOrder(repro.graph);
    auto evaluate =
        [&](const std::set<int>& keep) -> const difftest::CaseResult* {
        std::vector<int> key(keep.begin(), keep.end());
        auto it = cache.find(key);
        if (it == cache.end()) {
            GraphCase candidate =
                extractSubgraph(repro.graph, repro.leaves, keep);
            std::shared_ptr<const difftest::CaseResult> result;
            if (graph::validate(candidate.graph).ok()) {
                result = std::make_shared<difftest::CaseResult>(
                    difftest::runCase(candidate.graph, candidate.leaves,
                                      backends));
            }
            it = cache.emplace(std::move(key), std::move(result)).first;
        }
        return it->second.get();
    };
    auto still_fails = [&](const std::vector<size_t>& kept) {
        std::set<int> keep;
        for (size_t index : kept)
            keep.insert(ops[index]);
        keep = closeOverProducers(repro.graph, keep);
        const auto* result = evaluate(keep);
        return result != nullptr && caseMatches(*result, target);
    };

    DdminStats stats;
    const auto minimal =
        ddmin(ops.size(), still_fails, &stats, options.maxOracleRuns);
    std::set<int> keep;
    for (size_t index : minimal)
        keep.insert(ops[index]);
    keep = closeOverProducers(repro.graph, keep);

    auto minimized = std::make_shared<fuzz::GraphRepro>();
    GraphCase reduced = extractSubgraph(repro.graph, repro.leaves, keep);
    minimized->graph = std::move(reduced.graph);
    minimized->leaves = std::move(reduced.leaves);
    // The minimized repro's own trigger trace and diagnostic detail
    // (what the report shows); bug.defects keeps the discovery-time
    // trace.
    bug.minimizedDefects = bug.defects;
    if (const auto* final_result = evaluate(keep)) {
        if (auto matched = matchOf(*final_result, target)) {
            bug.minimizedDefects = std::move(matched->defects);
            bug.detail = std::move(matched->detail);
        }
    }
    bug.originalSize = ops.size();
    bug.minimizedSize = keep.size();
    bug.graphRepro = std::move(minimized);
    bug.minimized = true;
    bug.dedupKey = fingerprintKey(bug);
    return true;
}

// ---- PassSequenceReducer --------------------------------------------------

using tirlite::buffersEquivalent; // the shared bitwise oracle contract

bool
minimizeSeqBug(BugRecord& bug, const ReduceOptions& options)
{
    const auto& repro = *bug.seqRepro;
    const FingerprintTarget target = targetOf(bug);
    const bool is_crash = target.kind == "crash";
    // Which semantic defect must keep firing (empty for the genuine
    // miscompile record, which is instead pinned by the differential
    // oracle below).
    const std::string semantic_defect =
        !is_crash && bug.defects.size() == 1 ? bug.defects[0] : "";
    const bool is_miscompile = !is_crash && semantic_defect.empty();
    if (is_miscompile && repro.initial.empty())
        return false; // no oracle inputs captured; cannot re-check

    tirlite::Buffers reference;
    if (is_miscompile) {
        reference = repro.initial;
        tirlite::run(repro.program, reference);
    }

    auto still_fails = [&](const std::vector<size_t>& kept) {
        std::vector<std::string> subsequence;
        subsequence.reserve(kept.size());
        for (size_t index : kept)
            subsequence.push_back(repro.sequence[index]);
        // Keep trigger traces from the re-runs out of the ambient
        // thread-local window.
        DefectRegistry::TraceScope trace_scope;
        std::vector<std::string> fired;
        try {
            const auto optimized =
                tirlite::runTirPasses(repro.program, subsequence, fired);
            if (is_crash)
                return false;
            if (!semantic_defect.empty())
                return std::find(fired.begin(), fired.end(),
                                 semantic_defect) != fired.end();
            // Genuine miscompile: output must still differ bitwise
            // with no seeded defect explaining it.
            if (!fired.empty())
                return false;
            tirlite::Buffers out = repro.initial;
            tirlite::run(optimized, out);
            return !buffersEquivalent(reference, out);
        } catch (const BackendError& error) {
            return is_crash && error.kind() == target.crashKind;
        }
    };

    std::vector<size_t> all(repro.sequence.size());
    for (size_t i = 0; i < all.size(); ++i)
        all[i] = i;
    if (!still_fails(all))
        return false;

    DdminStats stats;
    const auto minimal = ddmin(repro.sequence.size(), still_fails, &stats,
                               options.maxOracleRuns);

    auto minimized = std::make_shared<fuzz::SeqRepro>(repro);
    minimized->sequence.clear();
    for (size_t index : minimal)
        minimized->sequence.push_back(repro.sequence[index]);
    // The minimized subsequence's own trigger trace for the report.
    if (!semantic_defect.empty()) {
        bug.minimizedDefects = {semantic_defect};
    } else if (is_crash) {
        DefectRegistry::TraceScope trace_scope;
        std::vector<std::string> fired;
        try {
            tirlite::runTirPasses(repro.program, minimized->sequence,
                                  fired);
        } catch (const BackendError&) {
        }
        bug.minimizedDefects = trace_scope.trace();
    } else {
        bug.minimizedDefects.clear(); // miscompile: no seeded defect
    }
    bug.originalSize = repro.sequence.size();
    bug.minimizedSize = minimized->sequence.size();
    bug.seqRepro = std::move(minimized);
    bug.minimized = true;
    bug.dedupKey = fingerprintKey(bug);
    return true;
}

// ---- graph-level pass-sequence reduction ----------------------------------

/** The graph-pass analogue of minimizeSeqBug: ddmin the pass list
 *  under the owning backend's run(kO0)-vs-runWithPasses oracle (the
 *  contract from fuzz/pass_fuzzer.h). The model and its reference run
 *  are fixed; only the sequence shrinks, so candidate evaluations are
 *  memoized by joined subsequence. */
bool
minimizeGraphSeqBug(BugRecord& bug, const ReduceOptions& options)
{
    const auto& original = *bug.graphSeqRepro;
    NNSMITH_ASSERT(backends::isGraphPassBackend(bug.backend),
                   "graph-sequence repro for non-graph-pass backend ",
                   bug.backend);
    const auto backend = bug.backend == "OrtLite"
                             ? backends::makeOrtLite()
                             : backends::makeTrtLite();
    const FingerprintTarget target = targetOf(bug);
    const bool is_crash = target.kind == "crash";
    // Which semantic defect must keep firing (empty for the genuine
    // miscompile record, which is instead pinned by the comparator).
    const std::string semantic_defect =
        !is_crash && bug.defects.size() == 1 ? bug.defects[0] : "";

    // Canonicalize the model up front: rebuild it with all op nodes
    // kept, which renumbers value ids densely in topological order —
    // the canonical form the corpus round-trip contract requires
    // (graph reduction gets this for free from its kept-set rebuilds).
    // The oracle runs against the canonical model below, so the
    // repro's still-fires check covers the renumbering too.
    const std::vector<int> ops = opNodesInOrder(original.graph);
    fuzz::GraphSeqRepro repro;
    {
        GraphCase canonical = extractSubgraph(
            original.graph, original.leaves,
            std::set<int>(ops.begin(), ops.end()));
        repro.graph = std::move(canonical.graph);
        repro.leaves = std::move(canonical.leaves);
        repro.sequence = original.sequence;
    }

    // Keep trigger traces from the re-runs out of the ambient window.
    DefectRegistry::TraceScope trace_scope;
    onnx::OnnxModel model;
    try {
        model = onnx::exportGraph(repro.graph);
    } catch (const BackendError&) {
        return false; // the flagged case exported; a hand edit broke it
    }
    const auto reference =
        backend->run(model, repro.leaves, backends::OptLevel::kO0);
    if (reference.status == backends::RunResult::Status::kCrash)
        return false; // import-stage crash masks the pass stage

    std::map<std::string, bool> cache; // joined subsequence -> fails
    auto still_fails = [&](const std::vector<size_t>& kept) {
        std::vector<std::string> subsequence;
        std::string key;
        subsequence.reserve(kept.size());
        for (size_t index : kept) {
            subsequence.push_back(repro.sequence[index]);
            key += repro.sequence[index];
            key += ",";
        }
        auto it = cache.find(key);
        if (it != cache.end())
            return it->second;
        DefectRegistry::TraceScope candidate_scope;
        const auto result =
            backend->runWithPasses(model, repro.leaves, subsequence);
        bool fails = false;
        if (result.status == backends::RunResult::Status::kCrash) {
            fails = is_crash && result.crashKind == target.crashKind;
        } else if (!is_crash) {
            const auto fired = backends::subtractFired(
                result.firedSemantic, reference.firedSemantic);
            if (!semantic_defect.empty()) {
                fails = std::find(fired.begin(), fired.end(),
                                  semantic_defect) != fired.end();
            } else {
                // Genuine miscompile: outputs must still differ with
                // no seeded defect explaining it.
                fails = fired.empty() &&
                        difftest::allFinite(reference.outputs) &&
                        !difftest::allClose(result.outputs,
                                            reference.outputs,
                                            difftest::CompareOptions());
            }
        }
        cache.emplace(std::move(key), fails);
        return fails;
    };

    std::vector<size_t> all(repro.sequence.size());
    for (size_t i = 0; i < all.size(); ++i)
        all[i] = i;
    if (!still_fails(all))
        return false;

    DdminStats stats;
    const auto minimal = ddmin(repro.sequence.size(), still_fails, &stats,
                               options.maxOracleRuns);

    auto minimized = std::make_shared<fuzz::GraphSeqRepro>(repro);
    minimized->sequence.clear();
    for (size_t index : minimal)
        minimized->sequence.push_back(repro.sequence[index]);
    // The minimized repro's own trigger trace for the report: re-run
    // it once; import-stage triggers are part of the repro's trace.
    if (!semantic_defect.empty()) {
        bug.minimizedDefects = {semantic_defect};
    } else if (is_crash) {
        DefectRegistry::TraceScope final_scope;
        backend->runWithPasses(model, repro.leaves, minimized->sequence);
        bug.minimizedDefects = final_scope.trace();
    } else {
        bug.minimizedDefects.clear(); // miscompile: no seeded defect
    }
    bug.originalSize = repro.sequence.size();
    bug.minimizedSize = minimized->sequence.size();
    bug.graphSeqRepro = std::move(minimized);
    bug.minimized = true;
    bug.dedupKey = fingerprintKey(bug);
    return true;
}

} // namespace

std::string
fingerprintKey(const BugRecord& bug)
{
    // Crashes (and export crashes) are already keyed trace-free by
    // backend|tag|crash-kind; sequence records (TIR and graph-level)
    // by backend|wrong|defect. Only graph-level wrong-results carry
    // the raw trigger trace in their key — canonicalize it to the
    // sorted relevant-defect set.
    if (bug.kind != "wrong-result" || bug.seqRepro != nullptr ||
        bug.graphSeqRepro != nullptr)
        return bug.dedupKey;
    const auto relevant = relevantSemanticDefects(bug.defects, bug.backend);
    if (relevant.empty())
        return bug.dedupKey;
    std::string key = bug.backend + "|wrong|";
    bool first = true;
    for (const auto& id : relevant) {
        if (!first)
            key += ",";
        key += id;
        first = false;
    }
    return key;
}

namespace {

/** Cheap pre-check mirroring minimizeGraphBug's first early-out, so
 *  irreducible records skip the full-case oracle run entirely. */
bool
graphTargetReducible(const BugRecord& bug)
{
    return bug.kind != "wrong-result" ||
           !relevantSemanticDefects(bug.defects, bug.backend).empty();
}

} // namespace

bool
minimizeBug(BugRecord& bug,
            const std::vector<backends::Backend*>& backends,
            const ReduceOptions& options)
{
    if (bug.graphRepro != nullptr) {
        if (!graphTargetReducible(bug))
            return false;
        const difftest::CaseResult full_result = difftest::runCase(
            bug.graphRepro->graph, bug.graphRepro->leaves, backends);
        CaseCache cache;
        return minimizeGraphBug(bug, backends, options, full_result,
                                cache);
    }
    if (bug.graphSeqRepro != nullptr)
        return minimizeGraphSeqBug(bug, options);
    if (bug.seqRepro != nullptr)
        return minimizeSeqBug(bug, options);
    return false;
}

void
minimizeBugs(std::vector<BugRecord>& bugs,
             const std::vector<backends::Backend*>& backends,
             const ReduceOptions& options)
{
    obs::PhaseSpan span("minimize");
    // All records of one flagged case share a GraphRepro; run the
    // full-case precondition once and share the candidate cache, so
    // per-record ddmins do not repeat each other's oracle runs.
    struct SharedRepro {
        std::shared_ptr<const difftest::CaseResult> full;
        CaseCache cache;
    };
    std::map<const fuzz::GraphRepro*, SharedRepro> shared;
    for (auto& bug : bugs) {
        if (bug.graphRepro != nullptr) {
            if (!graphTargetReducible(bug))
                continue;
            auto& state = shared[bug.graphRepro.get()];
            if (state.full == nullptr) {
                state.full = std::make_shared<difftest::CaseResult>(
                    difftest::runCase(bug.graphRepro->graph,
                                      bug.graphRepro->leaves, backends));
            }
            minimizeGraphBug(bug, backends, options, *state.full,
                             state.cache);
        } else if (bug.graphSeqRepro != nullptr) {
            minimizeGraphSeqBug(bug, options);
        } else if (bug.seqRepro != nullptr) {
            minimizeSeqBug(bug, options);
        }
    }
}

bool
reproStillFires(const BugRecord& bug,
                const std::vector<backends::Backend*>& backends)
{
    const FingerprintTarget target = targetOf(bug);
    if (bug.graphRepro != nullptr) {
        const auto& repro = *bug.graphRepro;
        return caseMatches(
            difftest::runCase(repro.graph, repro.leaves, backends), target);
    }
    if (bug.graphSeqRepro != nullptr) {
        const auto& repro = *bug.graphSeqRepro;
        NNSMITH_ASSERT(backends::isGraphPassBackend(bug.backend),
                       "graph-sequence repro for non-graph-pass backend ",
                       bug.backend);
        const auto backend = bug.backend == "OrtLite"
                                 ? backends::makeOrtLite()
                                 : backends::makeTrtLite();
        DefectRegistry::TraceScope trace_scope;
        onnx::OnnxModel model;
        try {
            model = onnx::exportGraph(repro.graph);
        } catch (const BackendError&) {
            return false;
        }
        const auto reference =
            backend->run(model, repro.leaves, backends::OptLevel::kO0);
        if (reference.status == backends::RunResult::Status::kCrash)
            return false;
        const auto result =
            backend->runWithPasses(model, repro.leaves, repro.sequence);
        if (result.status == backends::RunResult::Status::kCrash)
            return target.kind == "crash" &&
                   result.crashKind == target.crashKind;
        if (target.kind == "crash")
            return false;
        const auto fired = backends::subtractFired(
            result.firedSemantic, reference.firedSemantic);
        if (bug.defects.size() == 1)
            return std::find(fired.begin(), fired.end(), bug.defects[0]) !=
                   fired.end();
        return fired.empty() && difftest::allFinite(reference.outputs) &&
               !difftest::allClose(result.outputs, reference.outputs,
                                   difftest::CompareOptions());
    }
    if (bug.seqRepro != nullptr) {
        const auto& repro = *bug.seqRepro;
        DefectRegistry::TraceScope trace_scope;
        std::vector<std::string> fired;
        try {
            const auto optimized = tirlite::runTirPasses(
                repro.program, repro.sequence, fired);
            if (target.kind == "crash")
                return false;
            if (bug.defects.size() == 1)
                return std::find(fired.begin(), fired.end(),
                                 bug.defects[0]) != fired.end();
            if (!fired.empty() || repro.initial.empty())
                return false;
            tirlite::Buffers reference = repro.initial;
            tirlite::run(repro.program, reference);
            tirlite::Buffers out = repro.initial;
            tirlite::run(optimized, out);
            return !buffersEquivalent(reference, out);
        } catch (const BackendError& error) {
            return target.kind == "crash" &&
                   error.kind() == target.crashKind;
        }
    }
    return false;
}

} // namespace nnsmith::reduce
