/**
 * @file
 * Defect reduction: ddmin over computation graphs and TIR pass
 * sequences, keyed by defect-trace fingerprints (paper §5.4's
 * "turn a flagged iteration into an actionable repro" workflow).
 *
 * Two engines share the ddmin core (reduce/ddmin.h):
 *
 *  - **GraphReducer** delta-debugs a flagged Graph by removing op
 *    nodes (candidate kept-sets are closed over producers so the
 *    subgraph stays well-formed), re-validates every candidate via
 *    graph/validate, and re-runs the difftest oracle to check that the
 *    *same* defect-trace fingerprint still fires.
 *
 *  - **PassSequenceReducer** ddmins a flagged pass list to the minimal
 *    failing subsequence: TIR sequences under the bitwise tir_interp
 *    differential oracle, graph-level sequences (OrtLite/TrtLite,
 *    backends/graph_pass.h) under the owning backend's
 *    run(kO0)-vs-runWithPasses oracle (both contracts from
 *    fuzz/pass_fuzzer.h).
 *
 * A **fingerprint** pins down what must keep firing while the repro
 * shrinks: for crashes it is (backend, kind, crash kind) — the crash
 * kind *is* the seeded defect id; for wrong results it is the sorted
 * set of semantic defects attributable to the flagged backend (its own
 * system's plus the exporter's, whose corrupted metadata every backend
 * mis-executes). The campaign layer rekeys bug dedup by the minimized
 * fingerprint, which collapses reports that differ only in trigger
 * order or in unrelated co-triggered defects. Everything here is
 * deterministic — pure functions of the repro — so sharded campaigns
 * that minimize inside workers stay byte-identical for any shard
 * count. See DESIGN.md "Reduction & reporting".
 */
#ifndef NNSMITH_REDUCE_REDUCER_H
#define NNSMITH_REDUCE_REDUCER_H

#include "fuzz/fuzzer.h"
#include "reduce/ddmin.h"

namespace nnsmith::reduce {

/** Knobs shared by both engines. */
struct ReduceOptions {
    /** Oracle-evaluation cap per bug (deterministic cut; a graph
     *  oracle run is one export + compile + compare). */
    size_t maxOracleRuns = 256;
};

/**
 * Canonical fingerprint key of a bug observation — the minimized dedup
 * key. Crashes keep their (backend, kind, crash-kind) identity;
 * wrong-results are keyed by the sorted set of semantic defects
 * relevant to the flagged backend instead of the raw trigger trace.
 */
std::string fingerprintKey(const fuzz::BugRecord& bug);

/**
 * Third field of a "backend|tag|kind" dedup key — the crash kind that
 * must re-fire for crash/export-crash records; empty when the key has
 * fewer than three fields. The single parser of the dedup-key wire
 * format, shared with corpus replay (corpus/replay.h).
 */
std::string crashKindOfKey(const std::string& dedup_key);

/**
 * Minimize one flagged bug record in place: ddmin its repro (graph or
 * pass sequence), replace the repro with the minimized one, fill
 * originalSize/minimizedSize/minimizedDefects (the minimized repro's
 * own trigger trace; `defects` keeps the discovery-time one), and
 * rewrite dedupKey to fingerprintKey.
 * Returns false — leaving the record untouched — when the bug carries
 * no repro or the full repro does not reproduce its fingerprint.
 * @p backends is the list the flagged case ran against (graph bugs
 * re-run the oracle on it; sequence bugs need none).
 */
bool minimizeBug(fuzz::BugRecord& bug,
                 const std::vector<backends::Backend*>& backends,
                 const ReduceOptions& options = ReduceOptions());

/** minimizeBug over a whole iteration outcome's records. */
void minimizeBugs(std::vector<fuzz::BugRecord>& bugs,
                  const std::vector<backends::Backend*>& backends,
                  const ReduceOptions& options = ReduceOptions());

/**
 * Re-run a (minimized) bug's repro through its oracle and check the
 * fingerprint still fires — the acceptance probe used by tests and
 * bench_reduce. True also for untouched records whose repro fires.
 */
bool reproStillFires(const fuzz::BugRecord& bug,
                     const std::vector<backends::Backend*>& backends);

} // namespace nnsmith::reduce

#endif // NNSMITH_REDUCE_REDUCER_H
