/**
 * @file
 * Minimized-repro report writer.
 *
 * Turns a campaign's deduplicated bug map into on-disk repro reports:
 * one file per fingerprint containing the bug's identity, its
 * reduction stats, and the replayable artifact — the minimized
 * OnnxLite export (or the graph rendering when the bug *is* an export
 * crash) for graph bugs, the TIR program, pass sequence and initial
 * buffers for pass-sequence bugs. File names and contents are pure
 * functions of the bug map, so sharded campaigns write byte-identical
 * report trees for any shard count.
 *
 * The report body and the `index.tsv` row format are defined once in
 * corpus/corpus.h (`corpus::renderRepro`, `corpus::schema`); the
 * corpus parsers (corpus/parser.h) read the same schema back, and
 * corpus/replay.h replays the written tree as a regression suite at
 * the start of later campaigns.
 */
#ifndef NNSMITH_REDUCE_REPORT_H
#define NNSMITH_REDUCE_REPORT_H

#include <map>
#include <string>

#include "fuzz/fuzzer.h"

namespace nnsmith::reduce {

/** One written report. */
struct ReportEntry {
    std::string fingerprint; ///< the bug's dedup key
    std::string file;        ///< path relative to the report dir
};

/**
 * Write one repro file per bug that carries a repro into @p dir
 * (created if missing), plus an `index.tsv` summarizing fingerprint,
 * file, kind and reduction stats. Returns the entries written, in
 * fingerprint order. Bugs without repro material are skipped.
 */
std::vector<ReportEntry>
writeReproReports(const std::map<std::string, fuzz::BugRecord>& bugs,
                  const std::string& dir);

/** The file name a bug's report is written to (sanitized key). */
std::string reportFileName(const std::string& fingerprint);

} // namespace nnsmith::reduce

#endif // NNSMITH_REDUCE_REPORT_H
