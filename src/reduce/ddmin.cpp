#include "reduce/ddmin.h"

#include <algorithm>

#include "obs/metrics.h"

namespace nnsmith::reduce {

namespace {

/** current[begin..end) — one ddmin chunk as a concrete index vector. */
std::vector<size_t>
slice(const std::vector<size_t>& current, size_t begin, size_t end)
{
    return std::vector<size_t>(current.begin() + static_cast<long>(begin),
                               current.begin() + static_cast<long>(end));
}

/** current minus current[begin..end). */
std::vector<size_t>
complement(const std::vector<size_t>& current, size_t begin, size_t end)
{
    std::vector<size_t> out;
    out.reserve(current.size() - (end - begin));
    for (size_t i = 0; i < current.size(); ++i) {
        if (i < begin || i >= end)
            out.push_back(current[i]);
    }
    return out;
}

} // namespace

std::vector<size_t>
ddmin(size_t n, const KeepPredicate& still_fails, DdminStats* stats,
      size_t max_tests)
{
    DdminStats local;
    DdminStats& s = stats != nullptr ? *stats : local;
    s = DdminStats{};
    s.originalSize = n;

    std::vector<size_t> current(n);
    for (size_t i = 0; i < n; ++i)
        current[i] = i;

    auto test = [&](const std::vector<size_t>& subset) {
        ++s.testsRun;
        obs::counterAdd("ddmin.tests");
        return still_fails(subset);
    };
    auto budget_left = [&] {
        const bool left = max_tests == 0 || s.testsRun < max_tests;
        if (!left && !s.budgetExhausted) {
            s.budgetExhausted = true;
            obs::counterAdd("ddmin.budget_exhausted");
        }
        return left;
    };

    size_t granularity = 2;
    while (current.size() >= 2 && budget_left()) {
        const size_t k = std::min(granularity, current.size());
        // Chunk boundaries: k near-equal slices of the current set.
        std::vector<size_t> bounds(k + 1);
        for (size_t i = 0; i <= k; ++i)
            bounds[i] = current.size() * i / k;

        bool reduced = false;
        // Reduce to subset: one chunk alone still fails.
        for (size_t i = 0; i < k && budget_left(); ++i) {
            auto subset = slice(current, bounds[i], bounds[i + 1]);
            if (subset.empty())
                continue;
            if (test(subset)) {
                current = std::move(subset);
                granularity = 2;
                reduced = true;
                break;
            }
        }
        // Reduce to complement: dropping one chunk still fails. At
        // k == 2 the complements are the chunks just tested.
        if (!reduced && k > 2) {
            for (size_t i = 0; i < k && budget_left(); ++i) {
                auto rest = complement(current, bounds[i], bounds[i + 1]);
                if (rest.size() == current.size() || rest.empty())
                    continue;
                if (test(rest)) {
                    current = std::move(rest);
                    granularity = std::max<size_t>(k - 1, 2);
                    reduced = true;
                    break;
                }
            }
        }
        if (!reduced) {
            if (k >= current.size())
                break; // single-item chunks and nothing removable: done
            granularity = std::min(current.size(), granularity * 2);
        }
    }
    s.minimizedSize = current.size();
    return current;
}

} // namespace nnsmith::reduce
