#include "reduce/report.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "backends/defects.h"
#include "onnx/exporter.h"
#include "support/logging.h"

namespace nnsmith::reduce {

using backends::BackendError;
using fuzz::BugRecord;

namespace {

/** FNV-1a over the key: a stable collision-avoidance suffix for file
 *  names that sanitize differently but compare equal. */
uint64_t
fnv1a(const std::string& text)
{
    uint64_t hash = 1469598103934665603ull;
    for (const unsigned char c : text) {
        hash ^= c;
        hash *= 1099511628211ull;
    }
    return hash;
}

void
renderLeaves(std::ostringstream& os, const exec::LeafValues& leaves)
{
    // Reports must be replayable: every element, at %.17g so float
    // bit patterns round-trip (matching the seq-repro buffer dump;
    // Tensor::toString truncates and prints 6 digits).
    char buffer[64];
    for (const auto& [value_id, tensor] : leaves) {
        os << "  %" << value_id << ": "
           << tensor::dtypeName(tensor.dtype())
           << tensor.shape().toString() << " =";
        for (int64_t i = 0; i < tensor.numel(); ++i) {
            std::snprintf(buffer, sizeof(buffer), " %.17g",
                          tensor.scalarAt(i));
            os << buffer;
        }
        os << "\n";
    }
}

std::string
renderBug(const BugRecord& bug)
{
    std::ostringstream os;
    os << "# nnsmith minimized repro\n";
    os << "fingerprint: " << bug.dedupKey << "\n";
    os << "backend: " << bug.backend << "\n";
    os << "kind: " << bug.kind << "\n";
    os << "detail: " << bug.detail << "\n";
    // The minimized repro's own trigger trace; the discovery-time
    // trace is kept alongside when reduction stripped co-triggered
    // noise from it.
    const auto& defects =
        bug.minimized ? bug.minimizedDefects : bug.defects;
    os << "defects:";
    for (const auto& defect : defects)
        os << " " << defect;
    os << "\n";
    if (bug.minimized && bug.minimizedDefects != bug.defects) {
        os << "discovery defects:";
        for (const auto& defect : bug.defects)
            os << " " << defect;
        os << "\n";
    }
    if (bug.minimized) {
        os << "reduction: " << bug.originalSize << " -> "
           << bug.minimizedSize
           << (bug.graphRepro != nullptr ? " op nodes" : " passes")
           << " (ddmin)\n";
    } else {
        os << "reduction: none (raw flagged case)\n";
    }
    if (bug.graphRepro != nullptr) {
        const auto& repro = *bug.graphRepro;
        os << "\n--- graph ---\n" << repro.graph.toString() << "\n";
        os << "\n--- leaves ---\n";
        renderLeaves(os, repro.leaves);
        // The deployable artifact; for export-crash bugs the export
        // *is* the defect, so the graph rendering above is the repro.
        try {
            const auto model = onnx::exportGraph(repro.graph);
            os << "\n--- onnx ---\n" << model.serialize() << "\n";
        } catch (const BackendError& error) {
            os << "\n--- onnx ---\n(export crashes: " << error.kind()
               << " — replay the graph above through the exporter)\n";
        }
    } else if (bug.seqRepro != nullptr) {
        const auto& repro = *bug.seqRepro;
        os << "\n--- pass sequence ---\n";
        for (size_t i = 0; i < repro.sequence.size(); ++i)
            os << (i > 0 ? "," : "") << repro.sequence[i];
        os << "\n\n--- tir program ---\n"
           << repro.program.toString() << "\n";
        if (!repro.initial.empty()) {
            os << "\n--- initial buffers ---\n";
            for (size_t b = 0; b < repro.initial.size(); ++b) {
                os << "  buffer[" << b << "]:";
                char buffer[64];
                for (const double v : repro.initial[b]) {
                    std::snprintf(buffer, sizeof(buffer), " %.17g", v);
                    os << buffer;
                }
                os << "\n";
            }
        }
    }
    return os.str();
}

void
writeFile(const std::filesystem::path& path, const std::string& content)
{
    FILE* file = std::fopen(path.string().c_str(), "w");
    if (file == nullptr)
        fatal("reduce::writeReproReports: cannot write " + path.string());
    std::fwrite(content.data(), 1, content.size(), file);
    std::fclose(file);
}

} // namespace

std::string
reportFileName(const std::string& fingerprint)
{
    std::string sanitized;
    sanitized.reserve(fingerprint.size());
    for (const char c : fingerprint) {
        const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '.' || c == '-';
        sanitized += keep ? c : '_';
    }
    if (sanitized.size() > 96)
        sanitized.resize(96);
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), "-%08llx",
                  static_cast<unsigned long long>(fnv1a(fingerprint) &
                                                  0xFFFFFFFFull));
    return sanitized + suffix + ".repro.txt";
}

std::vector<ReportEntry>
writeReproReports(const std::map<std::string, BugRecord>& bugs,
                  const std::string& dir)
{
    const std::filesystem::path root(dir);
    std::filesystem::create_directories(root);

    // Merge with an existing index so multi-campaign drivers (e.g. a
    // figure bench running several fuzzers into one --report-dir)
    // accumulate one complete index; same-fingerprint rows are
    // overwritten. The merge is a set union keyed by fingerprint, so
    // re-running an identical campaign rewrites identical bytes.
    std::map<std::string, std::string> index_rows; // fingerprint -> rest
    {
        std::ifstream existing(root / "index.tsv");
        std::string line;
        bool header = true;
        while (std::getline(existing, line)) {
            if (header) {
                header = false;
                continue;
            }
            const auto tab = line.find('\t');
            if (tab != std::string::npos)
                index_rows[line.substr(0, tab)] = line.substr(tab + 1);
        }
    }

    std::vector<ReportEntry> entries;
    for (const auto& [key, bug] : bugs) {
        if (bug.graphRepro == nullptr && bug.seqRepro == nullptr)
            continue;
        ReportEntry entry;
        entry.fingerprint = key;
        entry.file = reportFileName(key);
        writeFile(root / entry.file, renderBug(bug));
        index_rows[key] = entry.file + "\t" + bug.kind + "\t" +
                          std::to_string(bug.originalSize) + "\t" +
                          std::to_string(bug.minimizedSize);
        entries.push_back(std::move(entry));
    }
    std::ostringstream index;
    index << "fingerprint\tfile\tkind\toriginal\tminimized\n";
    for (const auto& [key, rest] : index_rows)
        index << key << "\t" << rest << "\n";
    writeFile(root / "index.tsv", index.str());
    return entries;
}

} // namespace nnsmith::reduce
