#include "reduce/report.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "corpus/corpus.h"
#include "support/logging.h"

namespace nnsmith::reduce {

using fuzz::BugRecord;

namespace {

/** FNV-1a over the key: a stable collision-avoidance suffix for file
 *  names that sanitize differently but compare equal. */
uint64_t
fnv1a(const std::string& text)
{
    uint64_t hash = 1469598103934665603ull;
    for (const unsigned char c : text) {
        hash ^= c;
        hash *= 1099511628211ull;
    }
    return hash;
}

} // namespace

std::string
reportFileName(const std::string& fingerprint)
{
    std::string sanitized;
    sanitized.reserve(fingerprint.size());
    for (const char c : fingerprint) {
        const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '.' || c == '-';
        sanitized += keep ? c : '_';
    }
    if (sanitized.size() > 96)
        sanitized.resize(96);
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), "-%08llx",
                  static_cast<unsigned long long>(fnv1a(fingerprint) &
                                                  0xFFFFFFFFull));
    return sanitized + suffix + ".repro.txt";
}

std::vector<ReportEntry>
writeReproReports(const std::map<std::string, BugRecord>& bugs,
                  const std::string& dir)
{
    const std::filesystem::path root(dir);
    std::filesystem::create_directories(root);

    // Merge with an existing index so multi-campaign drivers (e.g. a
    // figure bench running several fuzzers into one --report-dir)
    // accumulate one complete index; same-fingerprint rows are
    // overwritten. The merge is a set union keyed by fingerprint, so
    // re-running an identical campaign rewrites identical bytes.
    std::map<std::string, std::string> index_rows; // fingerprint -> rest
    {
        std::ifstream existing(root / "index.tsv");
        std::string line;
        bool header = true;
        while (std::getline(existing, line)) {
            if (header) {
                header = false;
                continue;
            }
            const auto tab = line.find('\t');
            if (tab != std::string::npos)
                index_rows[line.substr(0, tab)] = line.substr(tab + 1);
        }
    }

    std::vector<ReportEntry> entries;
    for (const auto& [key, bug] : bugs) {
        if (bug.graphRepro == nullptr && bug.seqRepro == nullptr &&
            bug.graphSeqRepro == nullptr)
            continue;
        ReportEntry entry;
        entry.fingerprint = key;
        entry.file = reportFileName(key);
        // The repro body comes from the shared corpus schema
        // (corpus/corpus.h), the same definition corpus/parser.h reads
        // back — writer and parser cannot drift apart.
        corpus::writeCorpusFile((root / entry.file).string(),
                                corpus::renderRepro(bug));
        index_rows[key] = entry.file + "\t" + bug.kind + "\t" +
                          std::to_string(bug.originalSize) + "\t" +
                          std::to_string(bug.minimizedSize);
        entries.push_back(std::move(entry));
    }
    std::ostringstream index;
    index << corpus::schema::kIndexHeader << "\n";
    for (const auto& [key, rest] : index_rows)
        index << key << "\t" << rest << "\n";
    corpus::writeCorpusFile((root / "index.tsv").string(), index.str());
    return entries;
}

} // namespace nnsmith::reduce
