#include "exec/batched.h"

#include <map>

#include "support/logging.h"

namespace nnsmith::exec {

using graph::NodeKind;

std::vector<ExecResult>
executeBatched(const Graph& graph, const std::vector<LeafValues>& lanes)
{
    NNSMITH_ASSERT(graph.isConcrete(), "execute() needs a concrete graph");
    const size_t num_lanes = lanes.size();
    std::vector<ExecResult> results(num_lanes);
    std::map<int, BatchedTensor> values;
    for (int node_id : graph.topoOrder()) {
        const auto& node = graph.node(node_id);
        if (node.kind == NodeKind::kInput || node.kind == NodeKind::kWeight) {
            const int v = node.outputs[0];
            BatchedTensor bt;
            bt.lanes.reserve(num_lanes);
            const auto& type = graph.value(v).type;
            for (const LeafValues& leaves : lanes) {
                auto it = leaves.find(v);
                NNSMITH_ASSERT(it != leaves.end(),
                               "missing leaf tensor for %", v);
                NNSMITH_ASSERT(it->second.dtype() == type.dtype() &&
                                   it->second.shape() ==
                                       type.concreteShape(),
                               "leaf tensor mismatch for %", v);
                bt.lanes.push_back(it->second);
            }
            values.emplace(v, std::move(bt));
            continue;
        }
        NNSMITH_ASSERT(node.kind == NodeKind::kOp,
                       "unpromoted placeholder at execution");
        std::vector<std::vector<Tensor>> lane_inputs(num_lanes);
        for (size_t l = 0; l < num_lanes; ++l)
            lane_inputs[l].reserve(node.inputs.size());
        for (int v : node.inputs) {
            const BatchedTensor& bt = values.at(v);
            for (size_t l = 0; l < num_lanes; ++l)
                lane_inputs[l].push_back(bt.lanes[l]);
        }
        auto lane_outputs = node.op->executeBatched(lane_inputs);
        NNSMITH_ASSERT(lane_outputs.size() == num_lanes,
                       node.op->name(), " produced wrong lane count");
        for (size_t l = 0; l < num_lanes; ++l) {
            NNSMITH_ASSERT(lane_outputs[l].size() == node.outputs.size(),
                           node.op->name(), " produced wrong output count");
        }
        // Validity check in the sequential interpreter's order — per
        // lane it walks output index ascending, so "first invalid
        // node" is identical to the per-case run.
        for (size_t i = 0; i < node.outputs.size(); ++i) {
            BatchedTensor bt;
            bt.lanes.reserve(num_lanes);
            for (size_t l = 0; l < num_lanes; ++l) {
                Tensor& out = lane_outputs[l][i];
                if (results[l].firstInvalidNode == -1 &&
                    (out.hasNaNOrInf() || out.poisoned()))
                    results[l].firstInvalidNode = node_id;
                bt.lanes.push_back(std::move(out));
            }
            values.emplace(node.outputs[i], std::move(bt));
        }
    }
    for (auto& [v, bt] : values) {
        for (size_t l = 0; l < num_lanes; ++l)
            results[l].values.emplace(v, bt.lanes[l]);
    }
    for (int v : graph.outputValues()) {
        for (size_t l = 0; l < num_lanes; ++l)
            results[l].outputs.push_back(results[l].values.at(v));
    }
    return results;
}

} // namespace nnsmith::exec
