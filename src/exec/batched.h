/**
 * @file
 * Batched graph execution: one graph, B independent input sets
 * ("lanes"), one topological walk.
 *
 * A fuzz campaign repeatedly executes the *same* generated graph on
 * many input sets (value-search candidates, batched fuzz cases). The
 * sequential interpreter pays the topo walk, per-node op dispatch,
 * dtype dispatch and broadcast planning once per case; this layer pays
 * them once per *batch* and runs each kernel as B back-to-back sweeps
 * (`OpBase::executeBatched`), which is where the SIMD fast paths in
 * tensor/kernels.h spend their time.
 *
 * Identity contract: lane l of `executeBatched(graph, lanes)` is
 * bit-identical — values, poison flags, and `firstInvalidNode` — to
 * `execute(graph, lanes[l])`. Lanes never exchange data; per-lane
 * poison/NaN tracking follows the same node-then-output-index order as
 * the sequential interpreter. Campaign results merged from batched
 * iterations are therefore byte-identical to sequential ones.
 */
#ifndef NNSMITH_EXEC_BATCHED_H
#define NNSMITH_EXEC_BATCHED_H

#include "exec/interpreter.h"

namespace nnsmith::exec {

/**
 * One value's tensors across all lanes of a batch (lane l's tensor is
 * `lanes[l]`). Tensors are copy-on-write, so a BatchedTensor is cheap
 * to copy and to slice back into per-lane ExecResults.
 */
struct BatchedTensor {
    std::vector<Tensor> lanes;

    size_t numLanes() const { return lanes.size(); }
};

/**
 * Execute @p graph once per batch: one topological walk, each node
 * evaluated for all lanes via `OpBase::executeBatched`. Returns one
 * ExecResult per lane, each bit-identical to
 * `execute(graph, lanes[l])`.
 */
std::vector<ExecResult> executeBatched(const Graph& graph,
                                       const std::vector<LeafValues>& lanes);

} // namespace nnsmith::exec

#endif // NNSMITH_EXEC_BATCHED_H
