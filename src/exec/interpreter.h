/**
 * @file
 * Reference interpreter over concrete computation graphs.
 *
 * Plays the role PyTorch plays in the paper (§4): the trusted oracle
 * whose outputs ground differential testing, and the executor behind
 * gradient-based value search. It tracks, per intermediate, whether a
 * NaN/Inf appeared — needed both by Algorithm 3 (find the *first*
 * offending operator) and by the "numerically valid output" definition
 * (§2.3: internal exceptional values also disqualify a comparison).
 */
#ifndef NNSMITH_EXEC_INTERPRETER_H
#define NNSMITH_EXEC_INTERPRETER_H

#include <map>

#include "graph/graph.h"
#include "support/rng.h"
#include "tensor/tensor.h"

namespace nnsmith::exec {

using graph::Graph;
using tensor::Tensor;

/** Map from leaf value id to its concrete tensor. */
using LeafValues = std::map<int, Tensor>;

/** Execution outcome. */
struct ExecResult {
    /** Every value's tensor, keyed by value id. */
    std::map<int, Tensor> values;

    /** Output tensors in outputValues() order. */
    std::vector<Tensor> outputs;

    /**
     * First node (in topological order) whose output contains NaN/Inf
     * or is poisoned (integer div/mod-by-zero substitutes 0 and marks
     * the tensor, see tensor/kernels.h); -1 when execution was
     * numerically valid throughout.
     */
    int firstInvalidNode = -1;

    /** True iff no intermediate or output was NaN/Inf or poisoned. */
    bool numericallyValid() const { return firstInvalidNode == -1; }
};

/**
 * Execute @p graph given tensors for every input and weight value.
 * Panics if a leaf binding is missing or of the wrong type.
 */
ExecResult execute(const Graph& graph, const LeafValues& leaves);

/**
 * Uniform-random leaf tensors in [lo, hi) — the paper's Sampling
 * baseline draws from [1, 9] (§5.3).
 */
LeafValues randomLeaves(const Graph& graph, Rng& rng, double lo = 1.0,
                        double hi = 9.0);

} // namespace nnsmith::exec

#endif // NNSMITH_EXEC_INTERPRETER_H
