#include "exec/interpreter.h"

#include "support/logging.h"

namespace nnsmith::exec {

using graph::NodeKind;

ExecResult
execute(const Graph& graph, const LeafValues& leaves)
{
    NNSMITH_ASSERT(graph.isConcrete(), "execute() needs a concrete graph");
    ExecResult result;
    for (int node_id : graph.topoOrder()) {
        const auto& node = graph.node(node_id);
        if (node.kind == NodeKind::kInput || node.kind == NodeKind::kWeight) {
            const int v = node.outputs[0];
            auto it = leaves.find(v);
            NNSMITH_ASSERT(it != leaves.end(), "missing leaf tensor for %",
                           v);
            const auto& type = graph.value(v).type;
            NNSMITH_ASSERT(it->second.dtype() == type.dtype() &&
                               it->second.shape() == type.concreteShape(),
                           "leaf tensor mismatch for %", v);
            result.values.emplace(v, it->second);
            continue;
        }
        NNSMITH_ASSERT(node.kind == NodeKind::kOp,
                       "unpromoted placeholder at execution");
        std::vector<Tensor> inputs;
        inputs.reserve(node.inputs.size());
        for (int v : node.inputs)
            inputs.push_back(result.values.at(v));
        auto outputs = node.op->execute(inputs);
        NNSMITH_ASSERT(outputs.size() == node.outputs.size(),
                       node.op->name(), " produced wrong output count");
        for (size_t i = 0; i < outputs.size(); ++i) {
            // NaN/Inf in float outputs and poisoned integer outputs
            // (div/mod-by-zero, see tensor/kernels.h) disqualify the
            // case identically.
            if (result.firstInvalidNode == -1 &&
                (outputs[i].hasNaNOrInf() || outputs[i].poisoned()))
                result.firstInvalidNode = node_id;
            result.values.emplace(node.outputs[i], std::move(outputs[i]));
        }
    }
    for (int v : graph.outputValues())
        result.outputs.push_back(result.values.at(v));
    return result;
}

LeafValues
randomLeaves(const Graph& graph, Rng& rng, double lo, double hi)
{
    LeafValues leaves;
    for (const auto& node : graph.nodes()) {
        if (node.dead ||
            (node.kind != NodeKind::kInput && node.kind != NodeKind::kWeight))
            continue;
        const int v = node.outputs[0];
        const auto& type = graph.value(v).type;
        leaves.emplace(v, Tensor::random(type.dtype(), type.concreteShape(),
                                         rng, lo, hi));
    }
    return leaves;
}

} // namespace nnsmith::exec
