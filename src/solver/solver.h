/**
 * @file
 * Constraint-solver interface used by the model generator.
 *
 * The generator works incrementally (paper §3.2): each candidate operator
 * insertion produces a batch of predicates that is *tentatively* added;
 * if the system stays satisfiable the batch is committed, otherwise the
 * solver rolls back and the insertion point is rejected. Two backends
 * implement this contract:
 *
 *  - Z3Solver      — libz3 with push/pop scopes (the paper's choice);
 *  - NativeSolver  — first-party interval propagation + stochastic
 *                    min-conflicts completion (dependency-free fallback
 *                    and ablation subject).
 */
#ifndef NNSMITH_SOLVER_SOLVER_H
#define NNSMITH_SOLVER_SOLVER_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "symbolic/pred.h"

namespace nnsmith::solver {

using symbolic::Assignment;
using symbolic::Pred;
using symbolic::VarId;

/** Abstract incremental solver. */
class Solver {
  public:
    virtual ~Solver() = default;

    /**
     * Tentatively add a batch of predicates.
     *
     * @return true and commit the batch if the whole system remains
     *         satisfiable; false and leave the committed system
     *         untouched otherwise. (Algorithm 1's
     *         `try_add_constraints`.)
     */
    virtual bool tryAdd(const std::vector<Pred>& batch) = 0;

    /** Check satisfiability of the committed system only. */
    virtual bool check() = 0;

    /**
     * A model of the committed system.
     *
     * Only meaningful after a satisfiable check()/tryAdd(); variables
     * never mentioned by any committed predicate may be absent.
     */
    virtual std::optional<Assignment> model() = 0;

    /** Number of committed predicates (for tests/diagnostics). */
    virtual size_t numCommitted() const = 0;

    /** Backend name for logs ("z3" or "native"). */
    virtual std::string name() const = 0;
};

/** Which backend to construct. */
enum class SolverKind {
    kNative,
    kZ3,
    kAuto, ///< z3 when compiled in, native otherwise
};

/** True iff this build carries the z3 backend. */
bool haveZ3();

/** Construct a solver; @p seed drives any stochastic behaviour. */
std::unique_ptr<Solver> makeSolver(SolverKind kind, uint64_t seed);

} // namespace nnsmith::solver

#endif // NNSMITH_SOLVER_SOLVER_H
