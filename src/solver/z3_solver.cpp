/**
 * @file
 * z3-backed incremental solver (the paper's configuration, §3.2).
 *
 * Kept in one translation unit so the rest of the library never includes
 * z3++.h; the build works with or without z3 present.
 */
#include <unordered_map>

#include <z3++.h>

#include "solver/solver.h"
#include "support/logging.h"

namespace nnsmith::solver {

using symbolic::CmpOp;
using symbolic::Expr;
using symbolic::ExprKind;
using symbolic::ExprRef;

namespace {

/** Incremental z3 wrapper with push/pop batch semantics. */
class Z3Solver final : public Solver {
  public:
    explicit Z3Solver(uint64_t seed)
        : solver_(ctx_)
    {
        z3::params params(ctx_);
        params.set("timeout", 2000u); // per-query cap, milliseconds
        params.set("random_seed", static_cast<unsigned>(seed));
        solver_.set(params);
    }

    bool
    tryAdd(const std::vector<Pred>& batch) override
    {
        if (batch.empty())
            return true;
        solver_.push();
        for (const auto& p : batch)
            solver_.add(translate(p));
        if (solver_.check() != z3::sat) {
            solver_.pop();
            return false;
        }
        numCommitted_ += batch.size();
        return true;
    }

    bool
    check() override
    {
        return solver_.check() == z3::sat;
    }

    std::optional<Assignment>
    model() override
    {
        if (solver_.check() != z3::sat)
            return std::nullopt;
        z3::model m = solver_.get_model();
        Assignment a;
        for (const auto& [id, var] : vars_) {
            z3::expr value = m.eval(var, /*model_completion=*/true);
            int64_t v = 0;
            if (value.is_numeral_i64(v))
                a.set(id, v);
            else
                a.set(id, 1); // unconstrained: any value works
        }
        return a;
    }

    size_t numCommitted() const override { return numCommitted_; }
    std::string name() const override { return "z3"; }

  private:
    z3::expr
    varFor(VarId id, const std::string& name)
    {
        auto it = vars_.find(id);
        if (it != vars_.end())
            return it->second;
        z3::expr e = ctx_.int_const(name.c_str());
        vars_.emplace(id, e);
        return e;
    }

    z3::expr
    translate(const ExprRef& e)
    {
        switch (e->kind()) {
          case ExprKind::kConst:
            return ctx_.int_val(e->value());
          case ExprKind::kVar:
            return varFor(e->varId(), e->varName());
          case ExprKind::kNeg:
            return -translate(e->lhs());
          case ExprKind::kAdd:
            return translate(e->lhs()) + translate(e->rhs());
          case ExprKind::kSub:
            return translate(e->lhs()) - translate(e->rhs());
          case ExprKind::kMul:
            return translate(e->lhs()) * translate(e->rhs());
          case ExprKind::kFloorDiv: {
            // z3 integer division is Euclidean; for the positive
            // divisors used by shape math it coincides with floor.
            return translate(e->lhs()) / translate(e->rhs());
          }
          case ExprKind::kMod:
            return z3::mod(translate(e->lhs()), translate(e->rhs()));
          case ExprKind::kMin: {
            z3::expr a = translate(e->lhs());
            z3::expr b = translate(e->rhs());
            return z3::ite(a <= b, a, b);
          }
          case ExprKind::kMax: {
            z3::expr a = translate(e->lhs());
            z3::expr b = translate(e->rhs());
            return z3::ite(a >= b, a, b);
          }
        }
        NNSMITH_PANIC("bad ExprKind");
    }

    z3::expr
    translate(const Pred& p)
    {
        z3::expr l = translate(p.lhs);
        z3::expr r = translate(p.rhs);
        switch (p.op) {
          case CmpOp::kEq: return l == r;
          case CmpOp::kNe: return l != r;
          case CmpOp::kLt: return l < r;
          case CmpOp::kLe: return l <= r;
          case CmpOp::kGt: return l > r;
          case CmpOp::kGe: return l >= r;
        }
        NNSMITH_PANIC("bad CmpOp");
    }

    z3::context ctx_;
    z3::solver solver_;
    std::unordered_map<VarId, z3::expr> vars_;
    size_t numCommitted_ = 0;
};

} // namespace

std::unique_ptr<Solver>
makeZ3Solver(uint64_t seed)
{
    return std::make_unique<Z3Solver>(seed);
}

} // namespace nnsmith::solver
