#include "solver/solver.h"

#include "solver/native_solver.h"
#include "support/logging.h"

namespace nnsmith::solver {

#if NNSMITH_HAVE_Z3
std::unique_ptr<Solver> makeZ3Solver(uint64_t seed); // z3_solver.cpp
#endif

bool
haveZ3()
{
#if NNSMITH_HAVE_Z3
    return true;
#else
    return false;
#endif
}

std::unique_ptr<Solver>
makeSolver(SolverKind kind, uint64_t seed)
{
    switch (kind) {
      case SolverKind::kNative:
        return std::make_unique<NativeSolver>(seed);
      case SolverKind::kZ3:
#if NNSMITH_HAVE_Z3
        return makeZ3Solver(seed);
#else
        fatal("this build has no z3 backend");
#endif
      case SolverKind::kAuto:
#if NNSMITH_HAVE_Z3
        return makeZ3Solver(seed);
#else
        return std::make_unique<NativeSolver>(seed);
#endif
    }
    NNSMITH_PANIC("bad SolverKind");
}

} // namespace nnsmith::solver
