/**
 * @file
 * First-party constraint solver: interval propagation plus stochastic
 * min-conflicts completion.
 *
 * Graph-generation constraint systems are small (tens of variables) and
 * mostly box-like (positivity, bin ranges) with a few nonlinear couplers
 * (Reshape element-count equalities, Conv/Pool window inequalities). The
 * native solver exploits that structure; it is deliberately incomplete
 * (a "no" may be a resource limit), which is sound for generation: a
 * rejected insertion merely means another operator gets tried.
 */
#ifndef NNSMITH_SOLVER_NATIVE_SOLVER_H
#define NNSMITH_SOLVER_NATIVE_SOLVER_H

#include <unordered_map>

#include "solver/solver.h"
#include "support/rng.h"

namespace nnsmith::solver {

/** Tuning knobs for the native solver. */
struct NativeSolverConfig {
    int maxRestarts = 24;      ///< random restarts per satisfiability query
    int maxSteps = 400;        ///< min-conflicts steps per restart
    int64_t defaultLo = -(1 << 20);
    int64_t defaultHi = 1 << 20;
    int64_t smallValueCap = 8; ///< fresh vars prefer [1, cap] starts
};

/** See file comment. */
class NativeSolver final : public Solver {
  public:
    explicit NativeSolver(uint64_t seed,
                          NativeSolverConfig config = NativeSolverConfig());

    bool tryAdd(const std::vector<Pred>& batch) override;
    bool check() override;
    std::optional<Assignment> model() override;
    size_t numCommitted() const override { return committed_.size(); }
    std::string name() const override { return "native"; }

  private:
    struct Interval {
        int64_t lo;
        int64_t hi;
        bool empty() const { return lo > hi; }
    };

    using Domains = std::unordered_map<VarId, Interval>;

    /** Propagate simple bounds from @p preds into @p doms. */
    bool propagate(const std::vector<Pred>& preds, Domains& doms) const;

    /** Try to find a full model of @p preds; cache it on success. */
    bool findModel(const std::vector<Pred>& preds);

    std::vector<Pred> committed_;
    std::optional<Assignment> cached_;
    Rng rng_;
    NativeSolverConfig config_;
};

} // namespace nnsmith::solver

#endif // NNSMITH_SOLVER_NATIVE_SOLVER_H
