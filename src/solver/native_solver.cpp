#include "solver/native_solver.h"

#include <algorithm>
#include <cmath>

namespace nnsmith::solver {

using symbolic::CmpOp;
using symbolic::ExprKind;
using symbolic::ExprRef;
using symbolic::evaluate;

namespace {

/** Saturating add/mul keep interval arithmetic overflow-free. */
int64_t
satAdd(int64_t a, int64_t b)
{
    int64_t r;
    if (__builtin_add_overflow(a, b, &r))
        return a > 0 ? INT64_MAX : INT64_MIN;
    return r;
}

/** Number of predicates in @p preds violated by @p a. */
int
violationCount(const std::vector<Pred>& preds, const symbolic::Assignment& a)
{
    int count = 0;
    for (const auto& p : preds) {
        if (!holds(p, a))
            ++count;
    }
    return count;
}

} // namespace

NativeSolver::NativeSolver(uint64_t seed, NativeSolverConfig config)
    : rng_(seed), config_(config)
{
}

bool
NativeSolver::tryAdd(const std::vector<Pred>& batch)
{
    if (batch.empty())
        return true;
    std::vector<Pred> tentative = committed_;
    tentative.insert(tentative.end(), batch.begin(), batch.end());
    // Fast path: the cached model may already satisfy the new batch
    // (common for redundant constraints like repeated positivity).
    if (cached_) {
        bool all_bound = true;
        std::vector<VarId> vars;
        for (const auto& p : batch)
            collectVars(p, vars);
        for (VarId v : vars) {
            if (!cached_->has(v)) {
                all_bound = false;
                break;
            }
        }
        if (all_bound && allHold(batch, *cached_)) {
            committed_ = std::move(tentative);
            return true;
        }
    }
    if (!findModel(tentative))
        return false;
    committed_ = std::move(tentative);
    return true;
}

bool
NativeSolver::check()
{
    if (committed_.empty())
        return true;
    if (cached_ && allHold(committed_, *cached_))
        return true;
    return findModel(committed_);
}

std::optional<Assignment>
NativeSolver::model()
{
    if (!check())
        return std::nullopt;
    if (committed_.empty() && !cached_)
        return Assignment{};
    return cached_;
}

bool
NativeSolver::propagate(const std::vector<Pred>& preds, Domains& doms) const
{
    // Seed default boxes for every variable.
    std::vector<VarId> vars;
    for (const auto& p : preds)
        collectVars(p, vars);
    for (VarId v : vars) {
        if (!doms.count(v))
            doms[v] = {config_.defaultLo, config_.defaultHi};
    }
    // Tighten with patterns of the shape  var <op> const  /  const <op> var.
    bool changed = true;
    int rounds = 0;
    while (changed && rounds++ < 8) {
        changed = false;
        for (const auto& p : preds) {
            const ExprRef* var_side = nullptr;
            const ExprRef* const_side = nullptr;
            CmpOp op = p.op;
            if (p.lhs->isVar() && p.rhs->isConst()) {
                var_side = &p.lhs;
                const_side = &p.rhs;
            } else if (p.rhs->isVar() && p.lhs->isConst()) {
                var_side = &p.rhs;
                const_side = &p.lhs;
                // Mirror the comparison so the variable is on the left.
                switch (op) {
                  case CmpOp::kLt: op = CmpOp::kGt; break;
                  case CmpOp::kLe: op = CmpOp::kGe; break;
                  case CmpOp::kGt: op = CmpOp::kLt; break;
                  case CmpOp::kGe: op = CmpOp::kLe; break;
                  default: break;
                }
            } else {
                continue;
            }
            Interval& iv = doms[(*var_side)->varId()];
            const int64_t c = (*const_side)->value();
            Interval next = iv;
            switch (op) {
              case CmpOp::kEq: next.lo = std::max(next.lo, c);
                               next.hi = std::min(next.hi, c); break;
              case CmpOp::kLt: next.hi = std::min(next.hi, c - 1); break;
              case CmpOp::kLe: next.hi = std::min(next.hi, c); break;
              case CmpOp::kGt: next.lo = std::max(next.lo, c + 1); break;
              case CmpOp::kGe: next.lo = std::max(next.lo, c); break;
              case CmpOp::kNe: break; // no box tightening
            }
            if (next.lo != iv.lo || next.hi != iv.hi) {
                iv = next;
                changed = true;
            }
            if (iv.empty())
                return false;
        }
    }
    // Var == var equality union-find style tightening (one pass).
    for (const auto& p : preds) {
        if (p.op == CmpOp::kEq && p.lhs->isVar() && p.rhs->isVar()) {
            Interval& a = doms[p.lhs->varId()];
            Interval& b = doms[p.rhs->varId()];
            Interval merged{std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
            if (merged.empty())
                return false;
            a = b = merged;
        }
    }
    return true;
}

bool
NativeSolver::findModel(const std::vector<Pred>& preds)
{
    Domains doms;
    if (!propagate(preds, doms))
        return false;

    std::vector<VarId> vars;
    vars.reserve(doms.size());
    for (const auto& [v, iv] : doms) {
        (void)iv;
        vars.push_back(v);
    }
    std::sort(vars.begin(), vars.end());

    auto sample_value = [&](const Interval& iv, bool prefer_small) {
        int64_t lo = iv.lo;
        int64_t hi = iv.hi;
        if (prefer_small) {
            // Shapes/attributes are almost always small; bias there.
            lo = std::max<int64_t>(lo, std::min<int64_t>(1, hi));
            hi = std::min(hi, satAdd(lo, config_.smallValueCap));
        }
        if (lo > hi) {
            lo = iv.lo;
            hi = iv.hi;
        }
        return rng_.uniformInt(lo, hi);
    };

    for (int restart = 0; restart < config_.maxRestarts; ++restart) {
        Assignment a;
        // Warm-start from the cached model where possible; it satisfies
        // the previously committed prefix by construction.
        for (VarId v : vars) {
            if (restart == 0 && cached_ && cached_->has(v))
                a.set(v, cached_->get(v));
            else
                a.set(v, sample_value(doms[v], restart % 2 == 0));
        }
        int violated = violationCount(preds, a);
        for (int step = 0; violated > 0 && step < config_.maxSteps; ++step) {
            // Pick a violated predicate, then one variable in it.
            std::vector<size_t> bad;
            for (size_t i = 0; i < preds.size(); ++i) {
                if (!holds(preds[i], a))
                    bad.push_back(i);
            }
            const Pred& p = preds[bad[rng_.index(bad.size())]];
            std::vector<VarId> pv;
            collectVars(p, pv);
            if (pv.empty())
                return false; // constant contradiction, e.g. 1 == 2
            VarId v = pv[rng_.index(pv.size())];
            const Interval& iv = doms[v];
            const int64_t old_value = a.get(v);

            // Candidate moves: random resample plus targeted values.
            std::vector<int64_t> candidates;
            candidates.push_back(sample_value(iv, true));
            candidates.push_back(sample_value(iv, false));
            if (iv.lo > INT64_MIN)
                candidates.push_back(iv.lo);
            // If the predicate is var-vs-expr, jumping to the other
            // side's current value solves equalities in one move.
            if (p.lhs->isVar() && p.lhs->varId() == v)
                candidates.push_back(evaluate(p.rhs, a));
            if (p.rhs->isVar() && p.rhs->varId() == v)
                candidates.push_back(evaluate(p.lhs, a));

            int best_violated = violated;
            int64_t best_value = old_value;
            for (int64_t cand : candidates) {
                if (cand < iv.lo || cand > iv.hi)
                    continue;
                a.set(v, cand);
                const int count = violationCount(preds, a);
                if (count < best_violated ||
                    (count == best_violated && rng_.chance(0.2))) {
                    best_violated = count;
                    best_value = cand;
                }
            }
            a.set(v, best_value);
            violated = best_violated;
        }
        if (violated == 0) {
            cached_ = std::move(a);
            return true;
        }
    }
    return false;
}

} // namespace nnsmith::solver
