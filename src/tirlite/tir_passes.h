/**
 * @file
 * Low-level TIRLite optimization passes (the analogue of TVM's "up to
 * 58 low-level optimizations", §5.1). Each pass is instrumented with
 * dynamic coverage branches under "tvmlite/tir/..." (pass-only) and
 * hosts the tvm.tir.* seeded defects.
 */
#ifndef NNSMITH_TIRLITE_TIR_PASSES_H
#define NNSMITH_TIRLITE_TIR_PASSES_H

#include "tirlite/tir.h"

namespace nnsmith::tirlite {

/**
 * Run the full low-level pipeline (fold -> simplify-index -> unroll ->
 * vectorize-annotate -> dead-store-elim -> cse). Throws BackendError
 * for crash-symptom tvm.tir.* defects whose trigger matches.
 *
 * @param[out] fired_semantic appended with semantic defect ids whose
 *             trigger matched (the caller perturbs outputs).
 */
TirProgram runTirPipeline(const TirProgram& program,
                          std::vector<std::string>& fired_semantic);

} // namespace nnsmith::tirlite

#endif // NNSMITH_TIRLITE_TIR_PASSES_H
