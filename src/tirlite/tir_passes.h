/**
 * @file
 * Low-level TIRLite optimization passes (the analogue of TVM's "up to
 * 58 low-level optimizations", §5.1), organized as a **pass registry**:
 * each optimization is a named `TirPass` that can be run standalone or
 * composed into an arbitrary sequence, which is what makes pass
 * *order* and pass *subset* a fuzzable dimension (the pass-interaction
 * bug class Tzer targets). Each pass is instrumented with dynamic
 * coverage branches under "tvmlite/pass/<pass>" (pass-only) and hosts
 * the tvm.tir.* seeded defects. See DESIGN.md "TIR pass pipeline &
 * sequence fuzzing". The graph-level analogue for OrtLite/TrtLite is
 * backends/graph_pass.h.
 */
#ifndef NNSMITH_TIRLITE_TIR_PASSES_H
#define NNSMITH_TIRLITE_TIR_PASSES_H

#include <string>
#include <vector>

#include "tirlite/tir.h"

namespace nnsmith::tirlite {

/**
 * One registered low-level pass. `apply` returns the transformed
 * program; it throws backends::BackendError for crash-symptom
 * tvm.tir.* defects whose structural trigger matches, and appends
 * semantic defect ids to @p fired_semantic (the driver dedups).
 * Every pass is semantics-preserving on defect-free programs — the
 * contract the sequence fuzzer's differential oracle checks.
 */
struct TirPass {
    const char* name;
    TirProgram (*apply)(const TirProgram& program,
                        std::vector<std::string>& fired_semantic);
};

/** All registered passes, in a stable registration order. */
const std::vector<TirPass>& tirPasses();

/** Look up a pass by name; nullptr when unknown. */
const TirPass* findTirPass(const std::string& name);

/**
 * The fixed default pipeline (simplify-index -> fold -> unroll ->
 * vectorize-annotate -> dead-store-elim -> cse) — the order the
 * non-fuzzed TVMLite compile uses.
 */
const std::vector<std::string>& defaultTirPipeline();

/**
 * Run an explicit pass sequence. Unknown names panic. Semantic defect
 * ids are appended to @p fired_semantic **deduplicated** — a defect
 * firing twice (two triggers in one program, or one pass run twice in
 * a sequence) is reported once.
 */
TirProgram runTirPasses(const TirProgram& program,
                        const std::vector<std::string>& pass_names,
                        std::vector<std::string>& fired_semantic);

/** Run the default pipeline (shorthand for runTirPasses). */
TirProgram runTirPipeline(const TirProgram& program,
                          std::vector<std::string>& fired_semantic);

/**
 * Draw a random pass sequence — a nonempty subset of the registry in
 * random order — deterministically from @p rng. Used by the
 * pass-sequence fuzzer (fuzz/pass_fuzzer.h) and by TVMLite's
 * pass-fuzz mode (backends/backend.h makeTvmLite).
 */
std::vector<std::string> drawPassSequence(Rng& rng);

/**
 * Record the pass-sequence coverage bins of @p sequence under
 * "tvmlite/pass/seq": length bucket, first/last pass, and every
 * adjacent ordered pass pair ("pair/<a>><b>" — the pass-interaction
 * structure). All bins are pass-only sites.
 */
void recordSequenceCoverage(const std::vector<std::string>& sequence);

/**
 * Structural hash of a program (FNV-1a over the expression/statement
 * trees). TVMLite's pass-fuzz mode derives each lowered program's pass
 * sequence from this hash, so the sequence is a pure function of the
 * test case — which keeps sharded campaigns byte-identical.
 */
uint64_t hashTirProgram(const TirProgram& program);

} // namespace nnsmith::tirlite

#endif // NNSMITH_TIRLITE_TIR_PASSES_H
