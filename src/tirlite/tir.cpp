#include "tirlite/tir.h"

#include <sstream>

namespace nnsmith::tirlite {

TirExprRef
TirExpr::intImm(int64_t v)
{
    auto e = std::make_shared<TirExpr>();
    e->kind = TirExprKind::kIntImm;
    e->intValue = v;
    return e;
}

TirExprRef
TirExpr::floatImm(double v)
{
    auto e = std::make_shared<TirExpr>();
    e->kind = TirExprKind::kFloatImm;
    e->floatValue = v;
    return e;
}

TirExprRef
TirExpr::loopVar(int depth)
{
    auto e = std::make_shared<TirExpr>();
    e->kind = TirExprKind::kLoopVar;
    e->varDepth = depth;
    return e;
}

TirExprRef
TirExpr::load(int buffer, TirExprRef index)
{
    auto e = std::make_shared<TirExpr>();
    e->kind = TirExprKind::kLoad;
    e->buffer = buffer;
    e->a = std::move(index);
    return e;
}

TirExprRef
TirExpr::binary(TirExprKind kind, TirExprRef a, TirExprRef b)
{
    auto e = std::make_shared<TirExpr>();
    e->kind = kind;
    e->a = std::move(a);
    e->b = std::move(b);
    return e;
}

TirExprRef
TirExpr::intrinsic(TirExprKind kind, TirExprRef a)
{
    auto e = std::make_shared<TirExpr>();
    e->kind = kind;
    e->a = std::move(a);
    return e;
}

TirStmtRef
TirStmt::forLoop(int depth, int64_t extent, TirStmtRef body)
{
    auto s = std::make_shared<TirStmt>();
    s->kind = TirStmtKind::kFor;
    s->depth = depth;
    s->extent = extent;
    s->body = std::move(body);
    return s;
}

TirStmtRef
TirStmt::store(int buffer, TirExprRef index, TirExprRef value)
{
    auto s = std::make_shared<TirStmt>();
    s->kind = TirStmtKind::kStore;
    s->buffer = buffer;
    s->index = std::move(index);
    s->value = std::move(value);
    return s;
}

TirStmtRef
TirStmt::seq(std::vector<TirStmtRef> stmts)
{
    auto s = std::make_shared<TirStmt>();
    s->kind = TirStmtKind::kSeq;
    s->stmts = std::move(stmts);
    return s;
}

namespace {

void
renderExpr(const TirExprRef& e, std::ostream& os)
{
    switch (e->kind) {
      case TirExprKind::kIntImm: os << e->intValue; return;
      case TirExprKind::kFloatImm: os << e->floatValue; return;
      case TirExprKind::kLoopVar: os << "i" << e->varDepth; return;
      case TirExprKind::kLoad:
        os << "b" << e->buffer << "[";
        renderExpr(e->a, os);
        os << "]";
        return;
      case TirExprKind::kSqrtf:
      case TirExprKind::kExpf:
      case TirExprKind::kTanhf: {
        const char* name = e->kind == TirExprKind::kSqrtf
                               ? "sqrtf"
                               : (e->kind == TirExprKind::kExpf ? "expf"
                                                                : "tanhf");
        os << name << "(";
        renderExpr(e->a, os);
        os << ")";
        return;
      }
      default: {
        const char* op = "?";
        switch (e->kind) {
          case TirExprKind::kAdd: op = "+"; break;
          case TirExprKind::kSub: op = "-"; break;
          case TirExprKind::kMul: op = "*"; break;
          case TirExprKind::kDiv: op = "/"; break;
          case TirExprKind::kMod: op = "%"; break;
          case TirExprKind::kMin: op = "min"; break;
          case TirExprKind::kMax: op = "max"; break;
          default: break;
        }
        os << "(";
        renderExpr(e->a, os);
        os << " " << op << " ";
        renderExpr(e->b, os);
        os << ")";
        return;
      }
    }
}

void
renderStmt(const TirStmtRef& s, std::ostream& os, int indent)
{
    const std::string pad(static_cast<size_t>(indent) * 2, ' ');
    switch (s->kind) {
      case TirStmtKind::kFor:
        os << pad << "for i" << s->depth << " in 0.." << s->extent
           << " {\n";
        renderStmt(s->body, os, indent + 1);
        os << pad << "}\n";
        return;
      case TirStmtKind::kStore:
        os << pad << "b" << s->buffer << "[";
        renderExpr(s->index, os);
        os << "] = ";
        renderExpr(s->value, os);
        os << ";\n";
        return;
      case TirStmtKind::kSeq:
        for (const auto& sub : s->stmts)
            renderStmt(sub, os, indent);
        return;
    }
}

void
analyzeExpr(const TirExprRef& e, TirStats& stats)
{
    if (!e)
        return;
    switch (e->kind) {
      case TirExprKind::kLoad: ++stats.loads; break;
      case TirExprKind::kDiv:
      case TirExprKind::kMod: stats.hasDivMod = true; break;
      case TirExprKind::kSqrtf:
      case TirExprKind::kExpf:
      case TirExprKind::kTanhf: stats.hasIntrinsics = true; break;
      default: break;
    }
    analyzeExpr(e->a, stats);
    analyzeExpr(e->b, stats);
}

void
analyzeStmt(const TirStmtRef& s, TirStats& stats, int depth)
{
    if (!s)
        return;
    stats.maxDepth = std::max(stats.maxDepth, depth);
    switch (s->kind) {
      case TirStmtKind::kFor:
        ++stats.loops;
        analyzeStmt(s->body, stats, depth + 1);
        return;
      case TirStmtKind::kStore:
        ++stats.stores;
        analyzeExpr(s->index, stats);
        analyzeExpr(s->value, stats);
        return;
      case TirStmtKind::kSeq:
        for (const auto& sub : s->stmts)
            analyzeStmt(sub, stats, depth);
        return;
    }
}

/** Random scalar expression over loop vars / loads of input buffers. */
TirExprRef
randomExpr(Rng& rng, int n_loop_vars, int n_inputs, int64_t min_size,
           int budget)
{
    if (budget <= 0 || rng.chance(0.35)) {
        switch (rng.index(3)) {
          case 0:
            return TirExpr::floatImm(rng.uniformReal(-4.0, 4.0));
          case 1:
            if (n_inputs > 0) {
                // In-range load: index = linear loop var mod size.
                TirExprRef idx = n_loop_vars > 0
                                     ? TirExpr::loopVar(static_cast<int>(
                                           rng.index(static_cast<size_t>(
                                               n_loop_vars))))
                                     : TirExpr::intImm(0);
                idx = TirExpr::binary(TirExprKind::kMod, idx,
                                      TirExpr::intImm(min_size));
                return TirExpr::load(
                    static_cast<int>(rng.index(
                        static_cast<size_t>(n_inputs))),
                    idx);
            }
            [[fallthrough]];
          default:
            return TirExpr::floatImm(rng.uniformReal(0.0, 2.0));
        }
    }
    if (rng.chance(0.2)) {
        static const TirExprKind kIntrinsics[] = {
            TirExprKind::kSqrtf, TirExprKind::kExpf, TirExprKind::kTanhf};
        return TirExpr::intrinsic(
            kIntrinsics[rng.index(3)],
            randomExpr(rng, n_loop_vars, n_inputs, min_size, budget - 1));
    }
    static const TirExprKind kBinOps[] = {
        TirExprKind::kAdd, TirExprKind::kSub, TirExprKind::kMul,
        TirExprKind::kMin, TirExprKind::kMax};
    return TirExpr::binary(
        kBinOps[rng.index(5)],
        randomExpr(rng, n_loop_vars, n_inputs, min_size, budget - 1),
        randomExpr(rng, n_loop_vars, n_inputs, min_size, budget - 1));
}

} // namespace

std::string
TirProgram::toString() const
{
    std::ostringstream os;
    for (size_t i = 0; i < bufferSizes.size(); ++i) {
        os << "buffer b" << i << "[" << bufferSizes[i] << "]"
           << (static_cast<int>(i) < numInputs ? " (input)" : "") << "\n";
    }
    renderStmt(body, os, 0);
    return os.str();
}

TirStats
analyze(const TirProgram& program)
{
    TirStats stats;
    analyzeStmt(program.body, stats, 0);
    return stats;
}

TirProgram
randomProgram(Rng& rng, int max_depth, int64_t max_extent)
{
    TirProgram program;
    const int n_inputs = static_cast<int>(rng.uniformInt(1, 2));
    const int64_t size = rng.uniformInt(2, max_extent);
    for (int i = 0; i < n_inputs; ++i)
        program.bufferSizes.push_back(size);
    program.bufferSizes.push_back(size); // output
    program.numInputs = n_inputs;

    const int depth = static_cast<int>(rng.uniformInt(1, max_depth));
    TirExprRef index = TirExpr::loopVar(depth - 1);
    TirExprRef value =
        randomExpr(rng, depth, n_inputs, size, /*budget=*/3);
    TirStmtRef body = TirStmt::store(
        static_cast<int>(program.bufferSizes.size()) - 1,
        TirExpr::binary(TirExprKind::kMod, index, TirExpr::intImm(size)),
        value);
    for (int d = depth - 1; d >= 0; --d)
        body = TirStmt::forLoop(d, d == depth - 1 ? size
                                                  : rng.uniformInt(1, 4),
                                body);
    program.body = body;
    return program;
}

TirProgram
mutate(const TirProgram& program, Rng& rng)
{
    // Tzer-style joint mutation: either regrow the store expression or
    // wrap the body in another loop / change an extent.
    TirProgram out = program;
    const TirStats stats = analyze(program);
    const int choice = static_cast<int>(rng.index(3));
    if (choice == 0 || stats.loops == 0) {
        // Regrow the body from scratch against the *existing* buffer
        // layout (buffer indices must stay in range).
        const int64_t size = program.bufferSizes.front();
        const int depth = static_cast<int>(rng.uniformInt(1, 2));
        TirExprRef value = randomExpr(rng, depth, program.numInputs,
                                      size, /*budget=*/3);
        TirStmtRef body = TirStmt::store(
            static_cast<int>(program.bufferSizes.size()) - 1,
            TirExpr::binary(TirExprKind::kMod, TirExpr::loopVar(depth - 1),
                            TirExpr::intImm(size)),
            value);
        for (int d = depth - 1; d >= 0; --d)
            body = TirStmt::forLoop(
                d, d == depth - 1 ? size : rng.uniformInt(1, 4), body);
        out.body = body;
        return out;
    }
    if (choice == 1) {
        // Wrap with an outer unit loop (exercises nesting passes).
        out.body = TirStmt::forLoop(stats.maxDepth, rng.uniformInt(1, 3),
                                    program.body);
        return out;
    }
    // Append an extra store into the output buffer.
    auto extra = TirStmt::store(
        static_cast<int>(out.bufferSizes.size()) - 1, TirExpr::intImm(0),
        randomExpr(rng, 1, out.numInputs, out.bufferSizes[0], 2));
    out.body = TirStmt::seq({program.body, extra});
    return out;
}

} // namespace nnsmith::tirlite
