#include "tirlite/tir_interp.h"

#include <cmath>
#include <cstring>

namespace nnsmith::tirlite {

namespace {

/** Loop variable environment, indexed by depth. */
using Env = std::vector<int64_t>;

int64_t
wrap(int64_t index, size_t size)
{
    if (size == 0)
        return 0;
    const int64_t n = static_cast<int64_t>(size);
    int64_t m = index % n;
    if (m < 0)
        m += n;
    return m;
}

double
evalExpr(const TirExprRef& e, const Buffers& buffers, const Env& env)
{
    switch (e->kind) {
      case TirExprKind::kIntImm: return static_cast<double>(e->intValue);
      case TirExprKind::kFloatImm: return e->floatValue;
      case TirExprKind::kLoopVar:
        return e->varDepth < static_cast<int>(env.size())
                   ? static_cast<double>(env[static_cast<size_t>(
                         e->varDepth)])
                   : 0.0;
      case TirExprKind::kLoad: {
        NNSMITH_ASSERT(e->buffer >= 0 &&
                           e->buffer < static_cast<int>(buffers.size()),
                       "load from unknown buffer b", e->buffer);
        const auto& buf = buffers[static_cast<size_t>(e->buffer)];
        const auto idx = static_cast<int64_t>(
            evalExpr(e->a, buffers, env));
        return buf[static_cast<size_t>(wrap(idx, buf.size()))];
      }
      case TirExprKind::kSqrtf:
        return std::sqrt(evalExpr(e->a, buffers, env));
      case TirExprKind::kExpf:
        return std::exp(evalExpr(e->a, buffers, env));
      case TirExprKind::kTanhf:
        return std::tanh(evalExpr(e->a, buffers, env));
      default: {
        const double a = evalExpr(e->a, buffers, env);
        const double b = evalExpr(e->b, buffers, env);
        switch (e->kind) {
          case TirExprKind::kAdd: return a + b;
          case TirExprKind::kSub: return a - b;
          case TirExprKind::kMul: return a * b;
          case TirExprKind::kDiv:
            return b != 0.0 ? std::floor(a / b) : 0.0;
          case TirExprKind::kMod: {
            const auto ia = static_cast<int64_t>(a);
            const auto ib = static_cast<int64_t>(b);
            return ib != 0 ? static_cast<double>(wrap(ia,
                                 static_cast<size_t>(std::abs(ib))))
                           : 0.0;
          }
          case TirExprKind::kMin: return std::min(a, b);
          case TirExprKind::kMax: return std::max(a, b);
          default: NNSMITH_PANIC("bad TirExprKind");
        }
      }
    }
}

void
execStmt(const TirStmtRef& s, Buffers& buffers, Env& env)
{
    switch (s->kind) {
      case TirStmtKind::kFor: {
        if (static_cast<int>(env.size()) <= s->depth)
            env.resize(static_cast<size_t>(s->depth) + 1, 0);
        for (int64_t i = 0; i < s->extent; ++i) {
            env[static_cast<size_t>(s->depth)] = i;
            execStmt(s->body, buffers, env);
        }
        return;
      }
      case TirStmtKind::kStore: {
        NNSMITH_ASSERT(s->buffer >= 0 &&
                           s->buffer < static_cast<int>(buffers.size()),
                       "store to unknown buffer b", s->buffer);
        auto& buf = buffers[static_cast<size_t>(s->buffer)];
        const auto idx = static_cast<int64_t>(
            evalExpr(s->index, buffers, env));
        buf[static_cast<size_t>(wrap(idx, buf.size()))] =
            evalExpr(s->value, buffers, env);
        return;
      }
      case TirStmtKind::kSeq:
        for (const auto& sub : s->stmts)
            execStmt(sub, buffers, env);
        return;
    }
}

} // namespace

Buffers
makeBuffers(const TirProgram& program, Rng& rng)
{
    Buffers buffers;
    for (size_t i = 0; i < program.bufferSizes.size(); ++i) {
        std::vector<double> buf(
            static_cast<size_t>(program.bufferSizes[i]), 0.0);
        if (static_cast<int>(i) < program.numInputs) {
            for (auto& v : buf)
                v = rng.uniformReal(1.0, 9.0);
        }
        buffers.push_back(std::move(buf));
    }
    return buffers;
}

void
run(const TirProgram& program, Buffers& buffers)
{
    NNSMITH_ASSERT(buffers.size() == program.bufferSizes.size(),
                   "buffer count mismatch");
    Env env;
    execStmt(program.body, buffers, env);
}

bool
buffersEquivalent(const Buffers& a, const Buffers& b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].size() != b[i].size())
            return false;
        for (size_t j = 0; j < a[i].size(); ++j) {
            const double x = a[i][j];
            const double y = b[i][j];
            if (std::isnan(x) && std::isnan(y))
                continue;
            uint64_t xb = 0, yb = 0;
            std::memcpy(&xb, &x, sizeof(xb));
            std::memcpy(&yb, &y, sizeof(yb));
            if (xb != yb)
                return false;
        }
    }
    return true;
}

} // namespace nnsmith::tirlite
