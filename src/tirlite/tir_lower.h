/**
 * @file
 * Lowering of data-parallel graph operators to TIRLite loop nests.
 *
 * TVMLite lowers elementwise, matmul, slice and reshape nodes and runs
 * the low-level pipeline on each (the codegen part of the paper's TVM
 * workflow); other operators dispatch to library kernels, like TVM's
 * external ops.
 */
#ifndef NNSMITH_TIRLITE_TIR_LOWER_H
#define NNSMITH_TIRLITE_TIR_LOWER_H

#include <optional>

#include "graph/graph.h"
#include "tirlite/tir.h"

namespace nnsmith::tirlite {

/**
 * Lower one concrete operator node; nullopt for ops handled by
 * library kernels.
 */
std::optional<TirProgram> lowerNode(const graph::Graph& graph,
                                    const graph::Node& node);

} // namespace nnsmith::tirlite

#endif // NNSMITH_TIRLITE_TIR_LOWER_H
