/**
 * @file
 * TIRLite — a loop-level tensor IR, the analogue of TVM's TIR.
 *
 * TVMLite lowers data-parallel operators to TIRLite loop nests and
 * runs low-level simplification passes over them; the Tzer baseline
 * mutates TIRLite programs directly (paper §5.2, Fig. 8). The IR is
 * deliberately small: scalar f64 buffers, affine-ish index
 * expressions, perfect loop nests.
 */
#ifndef NNSMITH_TIRLITE_TIR_H
#define NNSMITH_TIRLITE_TIR_H

#include <memory>
#include <string>
#include <vector>

#include "support/logging.h"
#include "support/rng.h"

namespace nnsmith::tirlite {

/** Expression node kinds. */
enum class TirExprKind {
    kIntImm,
    kFloatImm,
    kLoopVar,  ///< loop index by nesting depth
    kLoad,     ///< buffer[index]
    kAdd, kSub, kMul, kDiv, kMod, kMin, kMax,
    kSqrtf, kExpf, kTanhf, ///< scalar intrinsics
};

struct TirExpr;
using TirExprRef = std::shared_ptr<const TirExpr>;

/** An expression tree node. */
struct TirExpr {
    TirExprKind kind;
    int64_t intValue = 0;   ///< kIntImm
    double floatValue = 0;  ///< kFloatImm
    int varDepth = 0;       ///< kLoopVar
    int buffer = -1;        ///< kLoad
    TirExprRef a;           ///< operands / kLoad index
    TirExprRef b;

    static TirExprRef intImm(int64_t v);
    static TirExprRef floatImm(double v);
    static TirExprRef loopVar(int depth);
    static TirExprRef load(int buffer, TirExprRef index);
    static TirExprRef binary(TirExprKind kind, TirExprRef a, TirExprRef b);
    static TirExprRef intrinsic(TirExprKind kind, TirExprRef a);
};

/** Statement kinds. */
enum class TirStmtKind {
    kFor,    ///< for var(depth) in [0, extent): body
    kStore,  ///< buffer[index] = value
    kSeq,    ///< statement sequence
};

struct TirStmt;
using TirStmtRef = std::shared_ptr<const TirStmt>;

/** A statement tree node. */
struct TirStmt {
    TirStmtKind kind;
    // kFor
    int64_t extent = 0;
    int depth = 0;
    TirStmtRef body;
    // kStore
    int buffer = -1;
    TirExprRef index;
    TirExprRef value;
    // kSeq
    std::vector<TirStmtRef> stmts;

    static TirStmtRef forLoop(int depth, int64_t extent, TirStmtRef body);
    static TirStmtRef store(int buffer, TirExprRef index, TirExprRef value);
    static TirStmtRef seq(std::vector<TirStmtRef> stmts);
};

/** A whole program: buffers + body. Buffer 0..numInputs-1 are inputs;
 *  the last buffer is conventionally the output. */
struct TirProgram {
    std::vector<int64_t> bufferSizes;
    int numInputs = 0;
    TirStmtRef body;

    std::string toString() const;
};

/** Structural statistics used by coverage keys and tests. */
struct TirStats {
    int loops = 0;
    int stores = 0;
    int loads = 0;
    int maxDepth = 0;
    bool hasDivMod = false;
    bool hasIntrinsics = false;
};
TirStats analyze(const TirProgram& program);

/** Generate a random (valid) TIR program — Tzer's seed generator. */
TirProgram randomProgram(Rng& rng, int max_depth = 2,
                         int64_t max_extent = 8);

/** Structure-preserving random mutation — Tzer's mutator. */
TirProgram mutate(const TirProgram& program, Rng& rng);

} // namespace nnsmith::tirlite

#endif // NNSMITH_TIRLITE_TIR_H
