#include "tirlite/tir_passes.h"

#include <algorithm>
#include <functional>

#include "backends/defects.h"
#include "coverage/coverage.h"

namespace nnsmith::tirlite {

using backends::BackendError;
using backends::DefectRegistry;
using coverage::CoverageRegistry;

namespace {

void
cov(const std::string& pass, const std::string& key)
{
    CoverageRegistry::instance().hitDynamic("tvmlite/tir/" + pass, key,
                                            /*pass_only=*/true);
}

/** Bucketize extents the way AFL bucketizes hit counts. */
std::string
extentBucket(int64_t extent)
{
    if (extent <= 1)
        return "e1";
    if (extent <= 2)
        return "e2";
    if (extent <= 4)
        return "e4";
    if (extent <= 8)
        return "e8";
    if (extent <= 16)
        return "e16";
    return "big";
}

const char*
exprKindKey(TirExprKind kind)
{
    switch (kind) {
      case TirExprKind::kIntImm: return "int";
      case TirExprKind::kFloatImm: return "float";
      case TirExprKind::kLoopVar: return "var";
      case TirExprKind::kLoad: return "load";
      case TirExprKind::kAdd: return "add";
      case TirExprKind::kSub: return "sub";
      case TirExprKind::kMul: return "mul";
      case TirExprKind::kDiv: return "div";
      case TirExprKind::kMod: return "mod";
      case TirExprKind::kMin: return "min";
      case TirExprKind::kMax: return "max";
      case TirExprKind::kSqrtf: return "sqrtf";
      case TirExprKind::kExpf: return "expf";
      case TirExprKind::kTanhf: return "tanhf";
    }
    return "?";
}

bool
isImm(const TirExprRef& e)
{
    return e->kind == TirExprKind::kIntImm ||
           e->kind == TirExprKind::kFloatImm;
}

double
immValue(const TirExprRef& e)
{
    return e->kind == TirExprKind::kIntImm
               ? static_cast<double>(e->intValue)
               : e->floatValue;
}

/** Recursively constant-fold an expression. */
TirExprRef
foldExpr(const TirExprRef& e)
{
    if (!e->a)
        return e;
    TirExprRef a = foldExpr(e->a);
    TirExprRef b = e->b ? foldExpr(e->b) : nullptr;
    cov("fold", exprKindKey(e->kind));
    if (b && isImm(a) && isImm(b)) {
        const double x = immValue(a);
        const double y = immValue(b);
        cov("fold", std::string("const/") + exprKindKey(e->kind));
        switch (e->kind) {
          case TirExprKind::kAdd: return TirExpr::floatImm(x + y);
          case TirExprKind::kSub: return TirExpr::floatImm(x - y);
          case TirExprKind::kMul: return TirExpr::floatImm(x * y);
          case TirExprKind::kMin:
            return TirExpr::floatImm(std::min(x, y));
          case TirExprKind::kMax:
            return TirExpr::floatImm(std::max(x, y));
          default: break;
        }
    }
    // x * 1 / x + 0 identities.
    if (b && e->kind == TirExprKind::kMul && isImm(b) &&
        immValue(b) == 1.0) {
        cov("fold", "mul_one");
        return a;
    }
    if (b && e->kind == TirExprKind::kAdd && isImm(b) &&
        immValue(b) == 0.0) {
        cov("fold", "add_zero");
        return a;
    }
    if (e->kind == TirExprKind::kLoad)
        return TirExpr::load(e->buffer, a);
    if (!b)
        return TirExpr::intrinsic(e->kind, a);
    return TirExpr::binary(e->kind, a, b);
}

/** Walk statements, rewriting expressions with @p rewrite. */
TirStmtRef
mapStmts(const TirStmtRef& s,
         const std::function<TirExprRef(const TirExprRef&)>& rewrite)
{
    switch (s->kind) {
      case TirStmtKind::kFor:
        return TirStmt::forLoop(s->depth, s->extent,
                                mapStmts(s->body, rewrite));
      case TirStmtKind::kStore:
        return TirStmt::store(s->buffer, rewrite(s->index),
                              rewrite(s->value));
      case TirStmtKind::kSeq: {
        std::vector<TirStmtRef> out;
        for (const auto& sub : s->stmts)
            out.push_back(mapStmts(sub, rewrite));
        return TirStmt::seq(std::move(out));
      }
    }
    NNSMITH_PANIC("bad TirStmtKind");
}

/** Does @p e contain a Mod(Mod(..), ..) nest? */
bool
hasNestedMod(const TirExprRef& e)
{
    if (!e)
        return false;
    if (e->kind == TirExprKind::kMod && e->a &&
        e->a->kind == TirExprKind::kMod)
        return true;
    return hasNestedMod(e->a) || (e->b && hasNestedMod(e->b));
}

/** Does @p e contain Add with a nonzero integer immediate (offset)? */
bool
hasOffset(const TirExprRef& e)
{
    if (!e)
        return false;
    if (e->kind == TirExprKind::kAdd && e->b &&
        ((e->b->kind == TirExprKind::kIntImm && e->b->intValue != 0) ||
         (e->a->kind == TirExprKind::kIntImm && e->a->intValue != 0)))
        return true;
    return hasOffset(e->a) || (e->b && hasOffset(e->b));
}

/** Count syntactically identical loads in one expression. */
void
collectLoads(const TirExprRef& e, std::vector<std::string>& keys)
{
    if (!e)
        return;
    if (e->kind == TirExprKind::kLoad) {
        keys.push_back("b" + std::to_string(e->buffer) + "/" +
                       exprKindKey(e->a->kind) +
                       (e->a->kind == TirExprKind::kLoopVar
                            ? std::to_string(e->a->varDepth)
                            : ""));
    }
    collectLoads(e->a, keys);
    if (e->b)
        collectLoads(e->b, keys);
}

/** The index-expression simplifier (hosts tvm.tir.simplify_mod). */
TirStmtRef
simplifyIndex(const TirStmtRef& s)
{
    return mapStmts(s, [](const TirExprRef& e) {
        if (hasNestedMod(e)) {
            cov("simplify", "nested_mod");
            if (DefectRegistry::instance().trigger("tvm.tir.simplify_mod"))
                throw BackendError("tvm.tir.simplify_mod",
                                   "TIR simplify: cannot prove "
                                   "mod-of-mod bound");
        }
        if (e->kind == TirExprKind::kDiv)
            cov("simplify", "div");
        if (e->kind == TirExprKind::kMod)
            cov("simplify", "mod");
        return foldExpr(e);
    });
}

/** Loop unrolling for tiny extents (hosts tvm.tir.unroll_offset). */
TirStmtRef
unroll(const TirStmtRef& s)
{
    switch (s->kind) {
      case TirStmtKind::kFor: {
        cov("unroll", extentBucket(s->extent));
        if (s->extent >= 8 && hasOffset(s->body->kind ==
                                                TirStmtKind::kStore
                                            ? s->body->index
                                            : nullptr)) {
            if (DefectRegistry::instance().trigger(
                    "tvm.tir.unroll_offset"))
                throw BackendError("tvm.tir.unroll_offset",
                                   "TIR unroll: offset base not "
                                   "handled for extent >= 8");
        }
        // Only annotate/recurse; actual peeling is not observable in
        // our interpreter, so we keep the loop.
        return TirStmt::forLoop(s->depth, s->extent, unroll(s->body));
      }
      case TirStmtKind::kStore:
        return s;
      case TirStmtKind::kSeq: {
        std::vector<TirStmtRef> out;
        for (const auto& sub : s->stmts)
            out.push_back(unroll(sub));
        return TirStmt::seq(std::move(out));
      }
    }
    NNSMITH_PANIC("bad TirStmtKind");
}

/** Vectorization annotation (hosts tvm.tir.vectorize_rem). */
void
vectorizeScan(const TirStmtRef& s, const TirStats& stats)
{
    if (s->kind == TirStmtKind::kFor) {
        if (s->extent % 4 == 0)
            cov("vectorize", "aligned/" + extentBucket(s->extent));
        else
            cov("vectorize", "tail/" + extentBucket(s->extent));
        if (s->extent >= 8 && s->extent % 4 != 0 && stats.hasIntrinsics) {
            if (DefectRegistry::instance().trigger(
                    "tvm.tir.vectorize_rem"))
                throw BackendError("tvm.tir.vectorize_rem",
                                   "TIR vectorize: remainder loop "
                                   "mis-specialized for intrinsic body");
        }
        vectorizeScan(s->body, stats);
    } else if (s->kind == TirStmtKind::kSeq) {
        for (const auto& sub : s->stmts)
            vectorizeScan(sub, stats);
    }
}

/** Dead-store scan (hosts tvm.tir.dead_store, semantic). */
void
deadStoreScan(const TirStmtRef& s, std::vector<std::string>& fired)
{
    if (s->kind == TirStmtKind::kSeq) {
        std::vector<int> stored_buffers;
        for (const auto& sub : s->stmts) {
            if (sub->kind == TirStmtKind::kStore) {
                cov("dse", "store/b" + std::to_string(sub->buffer));
                if (std::find(stored_buffers.begin(),
                              stored_buffers.end(),
                              sub->buffer) != stored_buffers.end()) {
                    cov("dse", "overwrite");
                    if (DefectRegistry::instance().trigger(
                            "tvm.tir.dead_store"))
                        fired.push_back("tvm.tir.dead_store");
                }
                stored_buffers.push_back(sub->buffer);
            }
            deadStoreScan(sub, fired);
        }
    } else if (s->kind == TirStmtKind::kFor) {
        deadStoreScan(s->body, fired);
    }
}

/** CSE scan (hosts tvm.tir.cse_load, crash). */
void
cseScan(const TirStmtRef& s)
{
    if (s->kind == TirStmtKind::kStore) {
        std::vector<std::string> keys;
        collectLoads(s->value, keys);
        std::sort(keys.begin(), keys.end());
        for (const auto& key : keys)
            cov("cse", key);
        const bool duplicate =
            std::adjacent_find(keys.begin(), keys.end()) != keys.end();
        if (duplicate) {
            cov("cse", "dup");
            if (DefectRegistry::instance().trigger("tvm.tir.cse_load"))
                throw BackendError("tvm.tir.cse_load",
                                   "TIR CSE: merged loads across a "
                                   "store");
        }
    } else if (s->kind == TirStmtKind::kFor) {
        cseScan(s->body);
    } else {
        for (const auto& sub : s->stmts)
            cseScan(sub);
    }
}

} // namespace

TirProgram
runTirPipeline(const TirProgram& program,
               std::vector<std::string>& fired_semantic)
{
    TirProgram out = program;
    out.body = simplifyIndex(program.body);
    out.body = unroll(out.body);
    const TirStats stats = analyze(out);
    vectorizeScan(out.body, stats);
    deadStoreScan(out.body, fired_semantic);
    cseScan(out.body);
    return out;
}

} // namespace nnsmith::tirlite
