#include "tirlite/tir_passes.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <set>

#include "backends/defects.h"
#include "coverage/coverage.h"

namespace nnsmith::tirlite {

using backends::BackendError;
using backends::DefectRegistry;
using coverage::CoverageRegistry;

namespace {

void
cov(const std::string& pass, const std::string& key)
{
    // Canonical `<backend>/pass/...` scheme shared by all three
    // backends (previously "tvmlite/tir/<pass>"; see DESIGN.md
    // "Coverage component naming" for the old->new mapping).
    CoverageRegistry::instance().hitDynamic("tvmlite/pass/" + pass, key,
                                            /*pass_only=*/true);
}

/** Bucketize extents the way AFL bucketizes hit counts. */
std::string
extentBucket(int64_t extent)
{
    if (extent <= 1)
        return "e1";
    if (extent <= 2)
        return "e2";
    if (extent <= 4)
        return "e4";
    if (extent <= 8)
        return "e8";
    if (extent <= 16)
        return "e16";
    return "big";
}

const char*
exprKindKey(TirExprKind kind)
{
    switch (kind) {
      case TirExprKind::kIntImm: return "int";
      case TirExprKind::kFloatImm: return "float";
      case TirExprKind::kLoopVar: return "var";
      case TirExprKind::kLoad: return "load";
      case TirExprKind::kAdd: return "add";
      case TirExprKind::kSub: return "sub";
      case TirExprKind::kMul: return "mul";
      case TirExprKind::kDiv: return "div";
      case TirExprKind::kMod: return "mod";
      case TirExprKind::kMin: return "min";
      case TirExprKind::kMax: return "max";
      case TirExprKind::kSqrtf: return "sqrtf";
      case TirExprKind::kExpf: return "expf";
      case TirExprKind::kTanhf: return "tanhf";
    }
    return "?";
}

bool
isImm(const TirExprRef& e)
{
    return e->kind == TirExprKind::kIntImm ||
           e->kind == TirExprKind::kFloatImm;
}

double
immValue(const TirExprRef& e)
{
    return e->kind == TirExprKind::kIntImm
               ? static_cast<double>(e->intValue)
               : e->floatValue;
}

/** Recursively constant-fold an expression. */
TirExprRef
foldExpr(const TirExprRef& e)
{
    if (!e->a)
        return e;
    TirExprRef a = foldExpr(e->a);
    TirExprRef b = e->b ? foldExpr(e->b) : nullptr;
    cov("fold", exprKindKey(e->kind));
    if (b && isImm(a) && isImm(b)) {
        const double x = immValue(a);
        const double y = immValue(b);
        cov("fold", std::string("const/") + exprKindKey(e->kind));
        switch (e->kind) {
          case TirExprKind::kAdd: return TirExpr::floatImm(x + y);
          case TirExprKind::kSub: return TirExpr::floatImm(x - y);
          case TirExprKind::kMul: return TirExpr::floatImm(x * y);
          case TirExprKind::kMin:
            return TirExpr::floatImm(std::min(x, y));
          case TirExprKind::kMax:
            return TirExpr::floatImm(std::max(x, y));
          default: break;
        }
    }
    // x * 1 / x + 0 identities.
    if (b && e->kind == TirExprKind::kMul && isImm(b) &&
        immValue(b) == 1.0) {
        cov("fold", "mul_one");
        return a;
    }
    if (b && e->kind == TirExprKind::kAdd && isImm(b) &&
        immValue(b) == 0.0) {
        cov("fold", "add_zero");
        return a;
    }
    if (e->kind == TirExprKind::kLoad)
        return TirExpr::load(e->buffer, a);
    if (!b)
        return TirExpr::intrinsic(e->kind, a);
    return TirExpr::binary(e->kind, a, b);
}

/** Walk statements, rewriting expressions with @p rewrite. */
TirStmtRef
mapStmts(const TirStmtRef& s,
         const std::function<TirExprRef(const TirExprRef&)>& rewrite)
{
    switch (s->kind) {
      case TirStmtKind::kFor:
        return TirStmt::forLoop(s->depth, s->extent,
                                mapStmts(s->body, rewrite));
      case TirStmtKind::kStore:
        return TirStmt::store(s->buffer, rewrite(s->index),
                              rewrite(s->value));
      case TirStmtKind::kSeq: {
        std::vector<TirStmtRef> out;
        for (const auto& sub : s->stmts)
            out.push_back(mapStmts(sub, rewrite));
        return TirStmt::seq(std::move(out));
      }
    }
    NNSMITH_PANIC("bad TirStmtKind");
}

/** Does @p e contain a Mod(Mod(..), ..) nest? */
bool
hasNestedMod(const TirExprRef& e)
{
    if (!e)
        return false;
    if (e->kind == TirExprKind::kMod && e->a &&
        e->a->kind == TirExprKind::kMod)
        return true;
    return hasNestedMod(e->a) || (e->b && hasNestedMod(e->b));
}

/** Does @p e contain Add with a nonzero integer immediate (offset)? */
bool
hasOffset(const TirExprRef& e)
{
    if (!e)
        return false;
    if (e->kind == TirExprKind::kAdd && e->b &&
        ((e->b->kind == TirExprKind::kIntImm && e->b->intValue != 0) ||
         (e->a->kind == TirExprKind::kIntImm && e->a->intValue != 0)))
        return true;
    return hasOffset(e->a) || (e->b && hasOffset(e->b));
}

/** Count syntactically identical loads in one expression. */
void
collectLoads(const TirExprRef& e, std::vector<std::string>& keys)
{
    if (!e)
        return;
    if (e->kind == TirExprKind::kLoad) {
        keys.push_back("b" + std::to_string(e->buffer) + "/" +
                       exprKindKey(e->a->kind) +
                       (e->a->kind == TirExprKind::kLoopVar
                            ? std::to_string(e->a->varDepth)
                            : ""));
    }
    collectLoads(e->a, keys);
    if (e->b)
        collectLoads(e->b, keys);
}

// ---- fold -----------------------------------------------------------------

TirProgram
passFold(const TirProgram& program, std::vector<std::string>&)
{
    TirProgram out = program;
    out.body = mapStmts(program.body, foldExpr);
    return out;
}

// ---- simplify-index (hosts tvm.tir.simplify_mod) --------------------------

TirProgram
passSimplifyIndex(const TirProgram& program, std::vector<std::string>&)
{
    TirProgram out = program;
    out.body = mapStmts(program.body, [](const TirExprRef& e) {
        if (hasNestedMod(e)) {
            cov("simplify", "nested_mod");
            if (DefectRegistry::instance().trigger("tvm.tir.simplify_mod"))
                throw BackendError("tvm.tir.simplify_mod",
                                   "TIR simplify: cannot prove "
                                   "mod-of-mod bound");
        }
        if (e->kind == TirExprKind::kDiv)
            cov("simplify", "div");
        if (e->kind == TirExprKind::kMod)
            cov("simplify", "mod");
        return e;
    });
    return out;
}

// ---- unroll (hosts tvm.tir.unroll_offset) ---------------------------------

TirStmtRef
unrollStmt(const TirStmtRef& s)
{
    switch (s->kind) {
      case TirStmtKind::kFor: {
        cov("unroll", extentBucket(s->extent));
        if (s->extent >= 8 && hasOffset(s->body->kind ==
                                                TirStmtKind::kStore
                                            ? s->body->index
                                            : nullptr)) {
            if (DefectRegistry::instance().trigger(
                    "tvm.tir.unroll_offset"))
                throw BackendError("tvm.tir.unroll_offset",
                                   "TIR unroll: offset base not "
                                   "handled for extent >= 8");
        }
        // Only annotate/recurse; actual peeling is not observable in
        // our interpreter, so we keep the loop.
        return TirStmt::forLoop(s->depth, s->extent,
                                unrollStmt(s->body));
      }
      case TirStmtKind::kStore:
        return s;
      case TirStmtKind::kSeq: {
        std::vector<TirStmtRef> out;
        for (const auto& sub : s->stmts)
            out.push_back(unrollStmt(sub));
        return TirStmt::seq(std::move(out));
      }
    }
    NNSMITH_PANIC("bad TirStmtKind");
}

TirProgram
passUnroll(const TirProgram& program, std::vector<std::string>&)
{
    TirProgram out = program;
    out.body = unrollStmt(program.body);
    return out;
}

// ---- vectorize-annotate (hosts tvm.tir.vectorize_rem) ---------------------

void
vectorizeScan(const TirStmtRef& s, const TirStats& stats)
{
    if (s->kind == TirStmtKind::kFor) {
        if (s->extent % 4 == 0)
            cov("vectorize", "aligned/" + extentBucket(s->extent));
        else
            cov("vectorize", "tail/" + extentBucket(s->extent));
        if (s->extent >= 8 && s->extent % 4 != 0 && stats.hasIntrinsics) {
            if (DefectRegistry::instance().trigger(
                    "tvm.tir.vectorize_rem"))
                throw BackendError("tvm.tir.vectorize_rem",
                                   "TIR vectorize: remainder loop "
                                   "mis-specialized for intrinsic body");
        }
        vectorizeScan(s->body, stats);
    } else if (s->kind == TirStmtKind::kSeq) {
        for (const auto& sub : s->stmts)
            vectorizeScan(sub, stats);
    }
}

TirProgram
passVectorize(const TirProgram& program, std::vector<std::string>&)
{
    vectorizeScan(program.body, analyze(program));
    return program;
}

// ---- dead-store-elim (hosts tvm.tir.dead_store, semantic) -----------------

void
deadStoreScan(const TirStmtRef& s, std::vector<std::string>& fired)
{
    if (s->kind == TirStmtKind::kSeq) {
        std::vector<int> stored_buffers;
        for (const auto& sub : s->stmts) {
            if (sub->kind == TirStmtKind::kStore) {
                cov("dse", "store/b" + std::to_string(sub->buffer));
                if (std::find(stored_buffers.begin(),
                              stored_buffers.end(),
                              sub->buffer) != stored_buffers.end()) {
                    cov("dse", "overwrite");
                    if (DefectRegistry::instance().trigger(
                            "tvm.tir.dead_store"))
                        fired.push_back("tvm.tir.dead_store");
                }
                stored_buffers.push_back(sub->buffer);
            }
            deadStoreScan(sub, fired);
        }
    } else if (s->kind == TirStmtKind::kFor) {
        deadStoreScan(s->body, fired);
    }
}

TirProgram
passDeadStoreElim(const TirProgram& program,
                  std::vector<std::string>& fired_semantic)
{
    deadStoreScan(program.body, fired_semantic);
    return program;
}

// ---- cse (hosts tvm.tir.cse_load, crash) ----------------------------------

void
cseScan(const TirStmtRef& s)
{
    if (s->kind == TirStmtKind::kStore) {
        std::vector<std::string> keys;
        collectLoads(s->value, keys);
        std::sort(keys.begin(), keys.end());
        for (const auto& key : keys)
            cov("cse", key);
        const bool duplicate =
            std::adjacent_find(keys.begin(), keys.end()) != keys.end();
        if (duplicate) {
            cov("cse", "dup");
            if (DefectRegistry::instance().trigger("tvm.tir.cse_load"))
                throw BackendError("tvm.tir.cse_load",
                                   "TIR CSE: merged loads across a "
                                   "store");
        }
    } else if (s->kind == TirStmtKind::kFor) {
        cseScan(s->body);
    } else {
        for (const auto& sub : s->stmts)
            cseScan(sub);
    }
}

TirProgram
passCse(const TirProgram& program, std::vector<std::string>&)
{
    cseScan(program.body);
    return program;
}

// ---- loop-fusion ----------------------------------------------------------

void
collectBufferUse(const TirExprRef& e, std::set<int>& loads)
{
    if (!e)
        return;
    if (e->kind == TirExprKind::kLoad)
        loads.insert(e->buffer);
    collectBufferUse(e->a, loads);
    if (e->b)
        collectBufferUse(e->b, loads);
}

void
collectBufferUse(const TirStmtRef& s, std::set<int>& stores,
                 std::set<int>& loads)
{
    switch (s->kind) {
      case TirStmtKind::kFor:
        collectBufferUse(s->body, stores, loads);
        return;
      case TirStmtKind::kStore:
        stores.insert(s->buffer);
        collectBufferUse(s->index, loads);
        collectBufferUse(s->value, loads);
        return;
      case TirStmtKind::kSeq:
        for (const auto& sub : s->stmts)
            collectBufferUse(sub, stores, loads);
        return;
    }
}

bool
disjoint(const std::set<int>& a, const std::set<int>& b)
{
    for (int x : a) {
        if (b.count(x) != 0)
            return false;
    }
    return true;
}

/**
 * Two sibling loops `for i: A; for i: B` (same depth, same extent) may
 * be fused into `for i: {A; B}` only when neither statement can
 * observe the other's stores and the stores cannot race for a final
 * value: store-buffer sets disjoint, and each side's loads disjoint
 * from the other side's stores. Loop extents are compile-time
 * constants and the IR has no conditionals, so a body's loop-variable
 * environment effects are identical on every iteration — fusing never
 * changes what a stale inner-loop variable reads.
 */
bool
canFuse(const TirStmtRef& a, const TirStmtRef& b)
{
    if (a->kind != TirStmtKind::kFor || b->kind != TirStmtKind::kFor ||
        a->depth != b->depth || a->extent != b->extent)
        return false;
    std::set<int> stores_a, loads_a, stores_b, loads_b;
    collectBufferUse(a->body, stores_a, loads_a);
    collectBufferUse(b->body, stores_b, loads_b);
    return disjoint(stores_a, stores_b) && disjoint(stores_a, loads_b) &&
           disjoint(stores_b, loads_a);
}

/** Append @p s to @p out, splicing nested Seq statements flat. */
void
appendFlattened(std::vector<TirStmtRef>& out, const TirStmtRef& s)
{
    if (s->kind == TirStmtKind::kSeq) {
        cov("fusion", "flatten");
        for (const auto& sub : s->stmts)
            appendFlattened(out, sub);
        return;
    }
    out.push_back(s);
}

TirStmtRef
fuseStmt(const TirStmtRef& s)
{
    switch (s->kind) {
      case TirStmtKind::kFor:
        return TirStmt::forLoop(s->depth, s->extent, fuseStmt(s->body));
      case TirStmtKind::kStore:
        return s;
      case TirStmtKind::kSeq: {
        std::vector<TirStmtRef> flat;
        for (const auto& sub : s->stmts)
            appendFlattened(flat, fuseStmt(sub));
        std::vector<TirStmtRef> out;
        for (const auto& sub : flat) {
            if (!out.empty() && canFuse(out.back(), sub)) {
                cov("fusion", "fuse/" + extentBucket(sub->extent));
                std::vector<TirStmtRef> merged;
                appendFlattened(merged, out.back()->body);
                appendFlattened(merged, sub->body);
                out.back() = TirStmt::forLoop(sub->depth, sub->extent,
                                              TirStmt::seq(
                                                  std::move(merged)));
                continue;
            }
            if (!out.empty() && out.back()->kind == TirStmtKind::kFor &&
                sub->kind == TirStmtKind::kFor)
                cov("fusion", "blocked");
            out.push_back(sub);
        }
        return TirStmt::seq(std::move(out));
      }
    }
    NNSMITH_PANIC("bad TirStmtKind");
}

TirProgram
passLoopFusion(const TirProgram& program, std::vector<std::string>&)
{
    TirProgram out = program;
    out.body = fuseStmt(program.body);
    return out;
}

// ---- const-hoist ----------------------------------------------------------

/**
 * Canonicalize commutative Add/Mul so immediates sit on the right —
 * "hoisting" constants out of the operand position later passes
 * inspect (fold's x*1 / x+0 identities only check the right operand).
 * IEEE addition and multiplication are value-commutative, so swapping
 * is bitwise semantics-preserving.
 */
TirExprRef
hoistExpr(const TirExprRef& e)
{
    if (!e->a)
        return e;
    TirExprRef a = hoistExpr(e->a);
    TirExprRef b = e->b ? hoistExpr(e->b) : nullptr;
    if (e->kind == TirExprKind::kLoad)
        return TirExpr::load(e->buffer, a);
    if (!b)
        return TirExpr::intrinsic(e->kind, a);
    if ((e->kind == TirExprKind::kAdd || e->kind == TirExprKind::kMul) &&
        isImm(a) && !isImm(b)) {
        cov("hoist", std::string("swap/") + exprKindKey(e->kind));
        std::swap(a, b);
    }
    return TirExpr::binary(e->kind, a, b);
}

TirProgram
passConstHoist(const TirProgram& program, std::vector<std::string>&)
{
    TirProgram out = program;
    out.body = mapStmts(program.body, hoistExpr);
    return out;
}

// ---- strength-reduce ------------------------------------------------------

/**
 * Strength reduction limited to rewrites that are bitwise-exact under
 * the interpreter's semantics: x*2 -> x+x (exact in IEEE), x-0 -> x,
 * and Mod(x, 1) -> 0 (the interpreter's Mod is integer with a positive
 * modulus, so any value mod 1 is 0). Div is left alone — the
 * interpreter floors quotients, so Div(x, 1) is floor(x), not x.
 */
TirExprRef
reduceExpr(const TirExprRef& e)
{
    if (!e->a)
        return e;
    TirExprRef a = reduceExpr(e->a);
    TirExprRef b = e->b ? reduceExpr(e->b) : nullptr;
    if (e->kind == TirExprKind::kLoad)
        return TirExpr::load(e->buffer, a);
    if (!b)
        return TirExpr::intrinsic(e->kind, a);
    if (e->kind == TirExprKind::kMul) {
        if (isImm(b) && immValue(b) == 2.0) {
            cov("strength", "mul2");
            return TirExpr::binary(TirExprKind::kAdd, a, a);
        }
        if (isImm(a) && immValue(a) == 2.0) {
            cov("strength", "mul2");
            return TirExpr::binary(TirExprKind::kAdd, b, b);
        }
    }
    if (e->kind == TirExprKind::kSub && isImm(b) && immValue(b) == 0.0) {
        cov("strength", "sub0");
        return a;
    }
    if (e->kind == TirExprKind::kMod && isImm(b) && immValue(b) == 1.0) {
        cov("strength", "mod1");
        return TirExpr::intImm(0);
    }
    return TirExpr::binary(e->kind, a, b);
}

TirProgram
passStrengthReduce(const TirProgram& program, std::vector<std::string>&)
{
    TirProgram out = program;
    out.body = mapStmts(program.body, reduceExpr);
    return out;
}

} // namespace

const std::vector<TirPass>&
tirPasses()
{
    static const std::vector<TirPass> registry = {
        {"fold", passFold},
        {"simplify-index", passSimplifyIndex},
        {"unroll", passUnroll},
        {"vectorize-annotate", passVectorize},
        {"dead-store-elim", passDeadStoreElim},
        {"cse", passCse},
        {"loop-fusion", passLoopFusion},
        {"const-hoist", passConstHoist},
        {"strength-reduce", passStrengthReduce},
    };
    return registry;
}

const TirPass*
findTirPass(const std::string& name)
{
    for (const auto& pass : tirPasses()) {
        if (name == pass.name)
            return &pass;
    }
    return nullptr;
}

const std::vector<std::string>&
defaultTirPipeline()
{
    // simplify-index before fold preserves the historical pipeline
    // exactly: the nested-mod defect trigger inspects the *unfolded*
    // index expressions, and everything downstream of fold sees the
    // folded tree.
    static const std::vector<std::string> pipeline = {
        "simplify-index", "fold",           "unroll",
        "vectorize-annotate", "dead-store-elim", "cse",
    };
    return pipeline;
}

TirProgram
runTirPasses(const TirProgram& program,
             const std::vector<std::string>& pass_names,
             std::vector<std::string>& fired_semantic)
{
    TirProgram out = program;
    for (const auto& name : pass_names) {
        const TirPass* pass = findTirPass(name);
        NNSMITH_ASSERT(pass != nullptr, "unknown TIR pass ", name);
        std::vector<std::string> fired;
        out = pass->apply(out, fired);
        for (auto& id : fired) {
            if (std::find(fired_semantic.begin(), fired_semantic.end(),
                          id) == fired_semantic.end())
                fired_semantic.push_back(std::move(id));
        }
    }
    return out;
}

TirProgram
runTirPipeline(const TirProgram& program,
               std::vector<std::string>& fired_semantic)
{
    return runTirPasses(program, defaultTirPipeline(), fired_semantic);
}

std::vector<std::string>
drawPassSequence(Rng& rng)
{
    const auto& registry = tirPasses();
    std::vector<std::string> names;
    for (const auto& pass : registry) {
        if (rng.chance(0.6))
            names.push_back(pass.name);
    }
    if (names.empty())
        names.push_back(registry[rng.index(registry.size())].name);
    rng.shuffle(names);
    return names;
}

void
recordSequenceCoverage(const std::vector<std::string>& sequence)
{
    if (sequence.empty())
        return;
    auto& registry = CoverageRegistry::instance();
    const auto hit = [&registry](const std::string& key) {
        registry.hitDynamic("tvmlite/pass/seq", key, /*pass_only=*/true);
    };
    hit("len/" + std::to_string(sequence.size()));
    hit("first/" + sequence.front());
    hit("last/" + sequence.back());
    for (size_t i = 0; i + 1 < sequence.size(); ++i)
        hit("pair/" + sequence[i] + ">" + sequence[i + 1]);
}

namespace {

void
hashMix(uint64_t& h, uint64_t v)
{
    // FNV-1a over the 8 bytes of v.
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xFFu;
        h *= 0x100000001B3ull;
    }
}

uint64_t
doubleBits(double v)
{
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

void
hashExpr(const TirExprRef& e, uint64_t& h)
{
    if (!e) {
        hashMix(h, 0xFEu);
        return;
    }
    hashMix(h, static_cast<uint64_t>(e->kind));
    hashMix(h, static_cast<uint64_t>(e->intValue));
    hashMix(h, doubleBits(e->floatValue));
    hashMix(h, static_cast<uint64_t>(e->varDepth));
    hashMix(h, static_cast<uint64_t>(e->buffer));
    hashExpr(e->a, h);
    hashExpr(e->b, h);
}

void
hashStmt(const TirStmtRef& s, uint64_t& h)
{
    if (!s) {
        hashMix(h, 0xFDu);
        return;
    }
    hashMix(h, static_cast<uint64_t>(s->kind));
    switch (s->kind) {
      case TirStmtKind::kFor:
        hashMix(h, static_cast<uint64_t>(s->extent));
        hashMix(h, static_cast<uint64_t>(s->depth));
        hashStmt(s->body, h);
        return;
      case TirStmtKind::kStore:
        hashMix(h, static_cast<uint64_t>(s->buffer));
        hashExpr(s->index, h);
        hashExpr(s->value, h);
        return;
      case TirStmtKind::kSeq:
        hashMix(h, s->stmts.size());
        for (const auto& sub : s->stmts)
            hashStmt(sub, h);
        return;
    }
}

} // namespace

uint64_t
hashTirProgram(const TirProgram& program)
{
    uint64_t h = 0xCBF29CE484222325ull;
    hashMix(h, static_cast<uint64_t>(program.numInputs));
    hashMix(h, program.bufferSizes.size());
    for (int64_t size : program.bufferSizes)
        hashMix(h, static_cast<uint64_t>(size));
    hashStmt(program.body, h);
    return h;
}

} // namespace nnsmith::tirlite
