/**
 * @file
 * Reference interpreter for TIRLite programs (used by tests and by the
 * Tzer baseline to actually run mutated programs).
 */
#ifndef NNSMITH_TIRLITE_TIR_INTERP_H
#define NNSMITH_TIRLITE_TIR_INTERP_H

#include <vector>

#include "tirlite/tir.h"

namespace nnsmith::tirlite {

/** Buffer contents, one vector per buffer. */
using Buffers = std::vector<std::vector<double>>;

/** Allocate buffers per the program's sizes; inputs filled from rng. */
Buffers makeBuffers(const TirProgram& program, Rng& rng);

/**
 * Execute @p program over @p buffers in place. Out-of-range indices
 * wrap (mod buffer size) — mutated programs must not be able to smash
 * the host.
 */
void run(const TirProgram& program, Buffers& buffers);

/**
 * Bitwise buffer equality with NaN == NaN — the differential-oracle
 * contract shared by the pass-sequence fuzzer (fuzz/pass_fuzzer.h)
 * and the pass-sequence reducer (reduce/reducer.h): a pass may
 * legally fold a NaN-producing subexpression at compile time,
 * changing the payload, but every other deviation — including a
 * flipped zero sign — is a miscompile, since registered passes are
 * bitwise-exact by contract.
 */
bool buffersEquivalent(const Buffers& a, const Buffers& b);

} // namespace nnsmith::tirlite

#endif // NNSMITH_TIRLITE_TIR_INTERP_H
