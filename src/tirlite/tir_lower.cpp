#include "tirlite/tir_lower.h"

#include "ops/binary.h"
#include "ops/elementwise.h"
#include "ops/shape_ops.h"

namespace nnsmith::tirlite {

using graph::Graph;
using graph::Node;

namespace {

TirExprRef
imm(int64_t v)
{
    return TirExpr::intImm(v);
}

/** Lower an elementwise unary op over a flat loop. */
TirProgram
lowerUnary(const std::string& name, int64_t numel)
{
    TirProgram program;
    program.bufferSizes = {numel, numel};
    program.numInputs = 1;
    const TirExprRef i = TirExpr::loopVar(0);
    const TirExprRef x = TirExpr::load(0, i);
    TirExprRef value;
    if (name == "Sqrt")
        value = TirExpr::intrinsic(TirExprKind::kSqrtf, x);
    else if (name == "Exp")
        value = TirExpr::intrinsic(TirExprKind::kExpf, x);
    else if (name == "Tanh")
        value = TirExpr::intrinsic(TirExprKind::kTanhf, x);
    else if (name == "Relu")
        value = TirExpr::binary(TirExprKind::kMax, x,
                                TirExpr::floatImm(0.0));
    else if (name == "Neg")
        value = TirExpr::binary(TirExprKind::kSub,
                                TirExpr::floatImm(0.0), x);
    else // generic epilogue: x + 0 (kept so fold passes see it)
        value = TirExpr::binary(TirExprKind::kAdd, x,
                                TirExpr::floatImm(0.0));
    program.body = TirStmt::forLoop(
        0, numel, TirStmt::store(1, i, value));
    return program;
}

TirExprKind
binaryKindToTir(const std::string& name)
{
    if (name == "Add") return TirExprKind::kAdd;
    if (name == "Sub") return TirExprKind::kSub;
    if (name == "Mul") return TirExprKind::kMul;
    if (name == "Div") return TirExprKind::kDiv;
    if (name == "Max") return TirExprKind::kMax;
    if (name == "Min") return TirExprKind::kMin;
    return TirExprKind::kAdd;
}

} // namespace

std::optional<TirProgram>
lowerNode(const Graph& graph, const Node& node)
{
    const std::string name = node.op->name();
    const auto out_type = graph.value(node.outputs[0]).type;
    if (!tensor::isFloat(out_type.dtype()))
        return std::nullopt; // integer ops stay on library kernels
    const int64_t numel = out_type.concreteShape().numel();

    // Elementwise unary.
    static const char* kUnary[] = {"Sqrt", "Exp",  "Tanh", "Relu",
                                   "Neg",  "Sigmoid", "Abs", "Sin"};
    for (const char* u : kUnary) {
        if (name == u)
            return lowerUnary(name, numel);
    }

    // Same-shape elementwise binary.
    if (name == "Add" || name == "Sub" || name == "Mul" ||
        name == "Div" || name == "Max" || name == "Min") {
        const auto a = graph.value(node.inputs[0]).type.concreteShape();
        const auto b = graph.value(node.inputs[1]).type.concreteShape();
        if (!(a == b))
            return std::nullopt; // broadcast handled by kernels
        TirProgram program;
        program.bufferSizes = {numel, numel, numel};
        program.numInputs = 2;
        const TirExprRef i = TirExpr::loopVar(0);
        program.body = TirStmt::forLoop(
            0, numel,
            TirStmt::store(2, i,
                           TirExpr::binary(binaryKindToTir(name),
                                           TirExpr::load(0, i),
                                           TirExpr::load(1, i))));
        return program;
    }

    // MatMul: the classic 3-deep nest with multiply-accumulate.
    if (name == "MatMul") {
        const auto a = graph.value(node.inputs[0]).type.concreteShape();
        const auto b = graph.value(node.inputs[1]).type.concreteShape();
        const int64_t m = a.dims[0], k = a.dims[1], n = b.dims[1];
        TirProgram program;
        program.bufferSizes = {m * k, k * n, m * n};
        program.numInputs = 2;
        const TirExprRef i = TirExpr::loopVar(0);
        const TirExprRef j = TirExpr::loopVar(1);
        const TirExprRef kk = TirExpr::loopVar(2);
        const TirExprRef c_idx = TirExpr::binary(
            TirExprKind::kAdd,
            TirExpr::binary(TirExprKind::kMul, i, imm(n)), j);
        const TirExprRef a_idx = TirExpr::binary(
            TirExprKind::kAdd,
            TirExpr::binary(TirExprKind::kMul, i, imm(k)), kk);
        const TirExprRef b_idx = TirExpr::binary(
            TirExprKind::kAdd,
            TirExpr::binary(TirExprKind::kMul, kk, imm(n)), j);
        TirStmtRef inner = TirStmt::store(
            2, c_idx,
            TirExpr::binary(TirExprKind::kAdd, TirExpr::load(2, c_idx),
                            TirExpr::binary(TirExprKind::kMul,
                                            TirExpr::load(0, a_idx),
                                            TirExpr::load(1, b_idx))));
        program.body = TirStmt::forLoop(
            0, m,
            TirStmt::forLoop(1, n, TirStmt::forLoop(2, k, inner)));
        return program;
    }

    // Slice: strided copy — index has a base offset (exercises the
    // unroll pass's offset handling).
    if (name == "Slice") {
        const int64_t start = node.op->attrValue("start");
        const int64_t stride = node.op->attrValue("stride");
        const int64_t in_numel =
            graph.value(node.inputs[0]).type.concreteShape().numel();
        TirProgram program;
        program.bufferSizes = {in_numel, numel};
        program.numInputs = 1;
        const TirExprRef i = TirExpr::loopVar(0);
        const TirExprRef src = TirExpr::binary(
            TirExprKind::kAdd,
            TirExpr::binary(TirExprKind::kMul, i, imm(stride)),
            imm(start));
        program.body = TirStmt::forLoop(
            0, numel, TirStmt::store(1, i, TirExpr::load(0, src)));
        return program;
    }

    // Reshape from rank >= 3: row-major relinearization produces
    // mod-of-mod index math (exercises the simplifier).
    if (name == "Reshape") {
        const auto in_shape =
            graph.value(node.inputs[0]).type.concreteShape();
        if (in_shape.rank() < 3)
            return std::nullopt;
        TirProgram program;
        program.bufferSizes = {numel, numel};
        program.numInputs = 1;
        const TirExprRef i = TirExpr::loopVar(0);
        const int64_t inner = in_shape.dims.back();
        const int64_t inner2 =
            inner * in_shape.dims[in_shape.dims.size() - 2];
        // Rank-4+ sources produce mod-of-mod address math; rank-3 a
        // single mod (the nested form is what trips the simplifier
        // defect, keeping its trigger suitably rare).
        const TirExprRef src =
            in_shape.rank() >= 4
                ? TirExpr::binary(
                      TirExprKind::kMod,
                      TirExpr::binary(TirExprKind::kMod, i, imm(inner2)),
                      imm(inner))
                : TirExpr::binary(TirExprKind::kMod, i, imm(inner));
        // src is only part of the address; keep the copy semantically
        // trivial but the index shape realistic for the passes.
        const TirExprRef full = TirExpr::binary(
            TirExprKind::kAdd,
            TirExpr::binary(TirExprKind::kSub, i,
                            TirExpr::binary(TirExprKind::kMod, i,
                                            imm(inner))),
            src);
        program.body = TirStmt::forLoop(
            0, numel, TirStmt::store(1, i, TirExpr::load(0, full)));
        return program;
    }

    return std::nullopt;
}

} // namespace nnsmith::tirlite
