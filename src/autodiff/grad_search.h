/**
 * @file
 * Gradient-guided value search (paper §3.3, Algorithm 3).
 *
 * Finds model inputs and weights under which *no* operator in the
 * graph produces a NaN/Inf. Three methods are provided, matching
 * Fig. 11's ablation:
 *   kSampling       — re-draw random values until valid;
 *   kGradient       — Algorithm 3 with plain derivatives;
 *   kGradientProxy  — Algorithm 3 with proxy derivatives (full method).
 */
#ifndef NNSMITH_AUTODIFF_GRAD_SEARCH_H
#define NNSMITH_AUTODIFF_GRAD_SEARCH_H

#include "autodiff/adam.h"
#include "autodiff/backward.h"
#include "autodiff/losses.h"
#include "exec/interpreter.h"
#include "graph/graph.h"
#include "support/rng.h"

namespace nnsmith::autodiff {

/** Value-search strategies (Fig. 11). */
enum class SearchMethod {
    kSampling,
    kGradient,
    kGradientProxy,
};

/** Human-readable method name for reports. */
std::string searchMethodName(SearchMethod method);

/** Search configuration. */
struct SearchConfig {
    SearchMethod method = SearchMethod::kGradientProxy;
    double timeBudgetMs = 64.0;   ///< paper sweeps i*8ms, i in [1,8]
    int maxIterations = 256;      ///< hard cap independent of wall time
    double learningRate = 0.5;    ///< paper §5.1
    double initLo = 1.0;          ///< Sampling draws from [1, 9) (§5.3)
    double initHi = 9.0;
};

/** Search outcome. */
struct SearchResult {
    bool success = false;
    exec::LeafValues values;  ///< valid leaves when success
    int iterations = 0;
    double elapsedMs = 0.0;
    std::string lastPredicate; ///< last loss used (diagnostics)
};

/**
 * Run the value search on a concrete graph. On success the returned
 * leaves make every intermediate numerically valid.
 */
SearchResult search(const graph::Graph& graph, Rng& rng,
                    const SearchConfig& config = SearchConfig());

} // namespace nnsmith::autodiff

#endif // NNSMITH_AUTODIFF_GRAD_SEARCH_H
