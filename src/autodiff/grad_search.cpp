#include "autodiff/grad_search.h"

#include <chrono>
#include <cmath>

#include "support/logging.h"

namespace nnsmith::autodiff {

using graph::NodeKind;
using tensor::DType;

namespace {

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Replace NaN/Inf entries of leaf tensors with fresh random values
 *  (Algorithm 3, line 13). */
void
repairExceptionalLeaves(exec::LeafValues& leaves, Rng& rng, double lo,
                        double hi)
{
    for (auto& [id, tensor] : leaves) {
        (void)id;
        if (!tensor::isFloat(tensor.dtype()))
            continue;
        for (int64_t i = 0; i < tensor.numel(); ++i) {
            const double v = tensor.scalarAt(i);
            if (std::isnan(v) || std::isinf(v))
                tensor.setScalar(i, rng.uniformReal(lo, hi));
        }
    }
}

bool
anyExceptionalLeaf(const exec::LeafValues& leaves)
{
    for (const auto& [id, tensor] : leaves) {
        (void)id;
        if (tensor.hasNaNOrInf())
            return true;
    }
    return false;
}

} // namespace

std::string
searchMethodName(SearchMethod method)
{
    switch (method) {
      case SearchMethod::kSampling: return "Sampling";
      case SearchMethod::kGradient: return "Gradient";
      case SearchMethod::kGradientProxy: return "Gradient (Proxy Deriv.)";
    }
    NNSMITH_PANIC("bad SearchMethod");
}

SearchResult
search(const graph::Graph& graph, Rng& rng, const SearchConfig& config)
{
    NNSMITH_ASSERT(graph.isConcrete(), "search needs a concrete graph");
    const double start = nowMs();
    SearchResult result;

    const bool use_gradient = config.method != SearchMethod::kSampling;
    const bool previous_proxy = ops::proxyDerivativesEnabled();
    ops::setProxyDerivativesEnabled(config.method ==
                                    SearchMethod::kGradientProxy);

    exec::LeafValues leaves =
        exec::randomLeaves(graph, rng, config.initLo, config.initHi);
    Adam adam(config.learningRate);
    int last_bad_node = -1;

    while (result.iterations < config.maxIterations &&
           (nowMs() - start) < config.timeBudgetMs) {
        ++result.iterations;
        const auto exec_result = exec::execute(graph, leaves);
        if (exec_result.numericallyValid()) {
            result.success = true;
            result.values = std::move(leaves);
            break;
        }
        if (!use_gradient) {
            // Sampling baseline: fresh random draw each round.
            leaves = exec::randomLeaves(graph, rng, config.initLo,
                                        config.initHi);
            continue;
        }

        // Algorithm 3: locate the first operator with an exceptional
        // output, pick its first positive loss, descend.
        const int bad_node = exec_result.firstInvalidNode;
        const auto& node = graph.node(bad_node);
        std::vector<Tensor> node_inputs;
        for (int v : node.inputs)
            node_inputs.push_back(exec_result.values.at(v));

        auto loss = firstPositiveLoss(*node.op, node_inputs);
        if (!loss)
            loss = magnitudeLoss(node_inputs);
        result.lastPredicate = node.op->name() + ": " + loss->predicate;

        if (bad_node != last_bad_node) {
            // Loss switched operators: reset the LR schedule (§3.3).
            adam.reset();
            last_bad_node = bad_node;
        }

        const auto leaf_grads =
            backpropagate(graph, exec_result, bad_node, loss->gradInputs);
        const bool changed = adam.step(leaves, leaf_grads);
        if (!changed) {
            // Zero gradient: restart from fresh random values
            // (Algorithm 3, line 11).
            leaves = exec::randomLeaves(graph, rng, config.initLo,
                                        config.initHi);
            adam.reset();
            last_bad_node = -1;
        } else if (anyExceptionalLeaf(leaves)) {
            // NaN/Inf leaked into <X, W>: re-randomize those entries
            // (Algorithm 3, line 13).
            repairExceptionalLeaves(leaves, rng, config.initLo,
                                    config.initHi);
        }
    }

    ops::setProxyDerivativesEnabled(previous_proxy);
    result.elapsedMs = nowMs() - start;
    return result;
}

} // namespace nnsmith::autodiff
