#include "autodiff/losses.h"

#include <cmath>

#include "ops/broadcast.h"
#include "support/logging.h"
#include "tensor/kernels.h"

namespace nnsmith::autodiff {

using tensor::DType;

namespace {

/**
 * Accumulate L = sum max(f(x), 0) and dL/dx = f'(x) * [f(x) > 0] into
 * a LossEval for one input tensor. Integer tensors contribute no loss
 * or gradient: Adam cannot move them, so the search falls back to
 * re-randomization (e.g. an integer Div with a zero divisor).
 */
template <typename F, typename DF>
void
hingeLoss(LossEval& eval, size_t input_index, const Tensor& x, F&& f,
          DF&& df)
{
    Tensor grad = Tensor::zeros(x.dtype(), x.shape());
    tensor::dispatchDType(x.dtype(), [&](auto tag) {
        using T = decltype(tag);
        if constexpr (std::is_floating_point_v<T>) {
            const T* px = x.data<T>();
            T* pg = grad.data<T>();
            const int64_t n = x.numel();
            for (int64_t i = 0; i < n; ++i) {
                const double v = px[i];
                // NaN inputs give no useful gradient; push them down
                // gently so Adam still moves (the search also
                // re-randomizes NaNs).
                if (std::isnan(v) || std::isinf(v)) {
                    eval.loss += 1.0;
                    pg[i] = static_cast<T>(v > 0 ? 1.0 : -1.0);
                    continue;
                }
                const double fx = f(v);
                if (fx > 0) {
                    eval.loss += fx;
                    pg[i] = static_cast<T>(df(v));
                }
            }
        }
    });
    eval.gradInputs[input_index] = std::move(grad);
}

LossEval
makeEval(const std::string& predicate, size_t arity)
{
    LossEval eval;
    eval.predicate = predicate;
    eval.gradInputs.assign(arity, Tensor{});
    return eval;
}

/** |X| <= 1 (Asin/Acos):  L = sum max(|x| - 1, 0). */
std::optional<LossEval>
domainAbsLeqOne(const std::vector<Tensor>& inputs)
{
    LossEval eval = makeEval("|X| <= 1", inputs.size());
    hingeLoss(eval, 0, inputs[0],
              [](double x) { return std::abs(x) - 1.0; },
              [](double x) { return x >= 0 ? 1.0 : -1.0; });
    if (eval.loss <= 0)
        return std::nullopt;
    return eval;
}

/** X > 0 (Log/Log2/Sqrt* — sqrt uses >= 0 but eps keeps it uniform). */
std::optional<LossEval>
domainPositive(const std::vector<Tensor>& inputs)
{
    LossEval eval = makeEval("X > 0", inputs.size());
    hingeLoss(eval, 0, inputs[0],
              [](double x) { return -x + kStrictEps; },
              [](double) { return -1.0; });
    if (eval.loss <= 0)
        return std::nullopt;
    return eval;
}

/** |Y| > 0 (Div): L = sum max(eps - |y|, 0) on input 1. */
std::optional<LossEval>
domainDivisorNonZero(const std::vector<Tensor>& inputs)
{
    LossEval eval = makeEval("|Y| > 0", inputs.size());
    hingeLoss(eval, 1, inputs[1],
              [](double y) { return kStrictEps - std::abs(y); },
              [](double y) { return y >= 0 ? -1.0 : 1.0; });
    if (eval.loss <= 0)
        return std::nullopt;
    return eval;
}

/** X <= 40 (Exp overflow guard). */
std::optional<LossEval>
domainExpBounded(const std::vector<Tensor>& inputs)
{
    LossEval eval = makeEval("X <= 40", inputs.size());
    hingeLoss(eval, 0, inputs[0],
              [](double x) { return x - kExpBound; },
              [](double) { return 1.0; });
    if (eval.loss <= 0)
        return std::nullopt;
    return eval;
}

/**
 * Pow(X, Y): X > 0  and  Y*log(X) <= 40 (paper Table 1; the log keeps
 * the loss itself finite).
 */
std::optional<LossEval>
domainPow(const std::vector<Tensor>& inputs)
{
    // First predicate: X > 0.
    {
        LossEval eval = makeEval("X > 0", inputs.size());
        hingeLoss(eval, 0, inputs[0],
                  [](double x) { return -x + kStrictEps; },
                  [](double) { return -1.0; });
        if (eval.loss > 0)
            return eval;
    }
    // Second: Y log X <= 40. Gradient w.r.t. both inputs.
    const Tensor& x = inputs[0];
    const Tensor& y = inputs[1];
    LossEval eval = makeEval("Y*log(X) <= 40", inputs.size());
    // Broadcast-aware: evaluate on the broadcast shape, then reduce.
    const auto out_shape = ops::broadcastShapes(x.shape(), y.shape());
    Tensor gx_full = Tensor::zeros(DType::kF64, out_shape);
    Tensor gy_full = Tensor::zeros(DType::kF64, out_shape);
    const ops::BroadcastIndexer ix(x.shape(), out_shape);
    const ops::BroadcastIndexer iy(y.shape(), out_shape);
    double* pgx = gx_full.data<double>();
    double* pgy = gy_full.data<double>();
    tensor::dispatchDType(x.dtype(), [&](auto tag) {
        using T = decltype(tag);
        if constexpr (std::is_floating_point_v<T>) {
            const T* px = x.data<T>();
            const T* py = y.data<T>();
            const int64_t n = out_shape.numel();
            for (int64_t i = 0; i < n; ++i) {
                const double xv = px[ix.map(i)];
                const double yv = py[iy.map(i)];
                if (xv <= 0)
                    continue; // handled by the first predicate
                const double f = yv * std::log(xv) - kExpBound;
                if (f > 0) {
                    eval.loss += f;
                    pgx[i] = yv / xv;
                    pgy[i] = std::log(xv);
                }
            }
        }
    });
    if (eval.loss <= 0)
        return std::nullopt;
    eval.gradInputs[0] =
        ops::reduceGradToShape(gx_full, x.shape()).castTo(x.dtype());
    eval.gradInputs[1] =
        ops::reduceGradToShape(gy_full, y.shape()).castTo(y.dtype());
    return eval;
}

/** BatchNorm: running var >= 0 (input index 4). */
std::optional<LossEval>
domainBatchNormVar(const std::vector<Tensor>& inputs)
{
    LossEval eval = makeEval("var >= 0", inputs.size());
    hingeLoss(eval, 4, inputs[4],
              [](double v) { return -v; },
              [](double) { return -1.0; });
    if (eval.loss <= 0)
        return std::nullopt;
    return eval;
}

} // namespace

std::optional<LossEval>
firstPositiveLoss(const OpBase& op, const std::vector<Tensor>& inputs)
{
    const std::string name = op.name();
    if (name == "Asin" || name == "Acos")
        return domainAbsLeqOne(inputs);
    if (name == "Log" || name == "Log2" || name == "Sqrt")
        return domainPositive(inputs);
    if (name == "Div" || name == "Mod")
        return domainDivisorNonZero(inputs);
    if (name == "Exp")
        return domainExpBounded(inputs);
    if (name == "Pow")
        return domainPow(inputs);
    if (name == "BatchNorm")
        return domainBatchNormVar(inputs);
    return std::nullopt;
}

LossEval
magnitudeLoss(const std::vector<Tensor>& inputs, double bound)
{
    LossEval eval = makeEval("|X| <= " + std::to_string(bound),
                             inputs.size());
    for (size_t i = 0; i < inputs.size(); ++i) {
        if (!tensor::isFloat(inputs[i].dtype()))
            continue;
        hingeLoss(eval, i, inputs[i],
                  [bound](double x) { return std::abs(x) - bound; },
                  [](double x) { return x >= 0 ? 1.0 : -1.0; });
    }
    return eval;
}

bool
isVulnerableOp(const std::string& op_name)
{
    for (const auto& name : vulnerableOpNames()) {
        if (name == op_name)
            return true;
    }
    return false;
}

std::vector<std::string>
vulnerableOpNames()
{
    return {"Asin", "Acos", "Log", "Log2", "Sqrt",
            "Div",  "Mod",  "Exp", "Pow",  "BatchNorm"};
}

} // namespace nnsmith::autodiff
