/**
 * @file
 * Graph-level reverse-mode differentiation.
 *
 * Given an executed graph and a loss gradient at one operator's inputs
 * (from losses.h), propagate cotangents back to the model's inputs and
 * weights so Adam can update them (Algorithm 3, line 9).
 */
#ifndef NNSMITH_AUTODIFF_BACKWARD_H
#define NNSMITH_AUTODIFF_BACKWARD_H

#include <map>

#include "exec/interpreter.h"
#include "graph/graph.h"
#include "tensor/tensor.h"

namespace nnsmith::autodiff {

using graph::Graph;
using tensor::Tensor;

/** Gradients for leaf values (inputs + weights), keyed by value id. */
using LeafGrads = std::map<int, Tensor>;

/**
 * Backpropagate from node @p target_node whose per-input cotangents
 * are @p grad_at_inputs (aligned with the node's inputs; empty Tensor
 * = none) through every upstream node, using the forward tensors from
 * @p exec_result. Non-differentiable operators (backward() returning
 * {}) absorb their cotangent.
 *
 * @return cotangents for every float leaf reached by gradient flow.
 */
LeafGrads
backpropagate(const Graph& graph, const exec::ExecResult& exec_result,
              int target_node, const std::vector<Tensor>& grad_at_inputs);

} // namespace nnsmith::autodiff

#endif // NNSMITH_AUTODIFF_BACKWARD_H
