/**
 * @file
 * Numeric-validity loss functions (paper §3.3, Tables 1 and 2).
 *
 * Each vulnerable operator carries tensor inequalities describing its
 * numerically valid input domain; every inequality is rewritten to the
 * canonical form f(X) <= 0 / f(X) < 0 and converted to a scalar loss
 *   L = sum_x max(f(x), 0)        (resp. + eps inside the max)
 * which is positive iff the predicate is violated. The search uses the
 * first positive loss of the first operator that emitted NaN/Inf.
 */
#ifndef NNSMITH_AUTODIFF_LOSSES_H
#define NNSMITH_AUTODIFF_LOSSES_H

#include <optional>
#include <string>
#include <vector>

#include "ops/op_base.h"
#include "tensor/tensor.h"

namespace nnsmith::autodiff {

using ops::OpBase;
using tensor::Tensor;

/** Epsilon for strict inequalities (paper §5.1: 1e-10). */
inline constexpr double kStrictEps = 1e-10;

/** Magnitude bound used by log-domain overflow guards (Table 1: 40). */
inline constexpr double kExpBound = 40.0;

/** A evaluated loss: scalar value + gradient w.r.t. each op input. */
struct LossEval {
    std::string predicate;       ///< which inequality was violated
    double loss = 0.0;
    std::vector<Tensor> gradInputs; ///< same arity as the op's inputs;
                                    ///< empty Tensor{} = no gradient
};

/**
 * Evaluate the *first positive* loss of @p op on @p inputs (Algorithm
 * 3, line 8). Returns nullopt when the operator has no loss functions
 * or none is positive — the caller then falls back to the generic
 * magnitude loss below.
 */
std::optional<LossEval>
firstPositiveLoss(const OpBase& op, const std::vector<Tensor>& inputs);

/**
 * Generic fallback: penalize |x| > bound on every float input. Covers
 * overflow in operators without a Table-1 entry (e.g. long Mul/Add
 * chains whose products explode).
 */
LossEval magnitudeLoss(const std::vector<Tensor>& inputs,
                       double bound = 1e4);

/** True if this operator has dedicated loss functions (Table 1). */
bool isVulnerableOp(const std::string& op_name);

/** Names of all operators with dedicated losses (for tests/benches). */
std::vector<std::string> vulnerableOpNames();

} // namespace nnsmith::autodiff

#endif // NNSMITH_AUTODIFF_LOSSES_H
