#include "autodiff/adam.h"

#include <cmath>

#include "support/logging.h"
#include "tensor/kernels.h"

namespace nnsmith::autodiff {

using tensor::DType;

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps)
{
}

bool
Adam::step(exec::LeafValues& leaves, const std::map<int, Tensor>& grads)
{
    ++t_;
    const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
    const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
    bool changed = false;
    for (const auto& [value_id, grad] : grads) {
        auto leaf_it = leaves.find(value_id);
        if (leaf_it == leaves.end())
            continue;
        Tensor& param = leaf_it->second;
        if (!tensor::isFloat(param.dtype()))
            continue;
        auto& m = m_.try_emplace(value_id,
                                 Tensor::zeros(DType::kF64, param.shape()))
                      .first->second;
        auto& v = v_.try_emplace(value_id,
                                 Tensor::zeros(DType::kF64, param.shape()))
                      .first->second;
        double* pm = m.data<double>();
        double* pv = v.data<double>();
        tensor::dispatchDType(param.dtype(), [&](auto tag) {
            using T = decltype(tag);
            if constexpr (std::is_floating_point_v<T>) {
                const T* pg = grad.data<T>();
                T* pp = param.data<T>();
                const int64_t n = param.numel();
                for (int64_t i = 0; i < n; ++i) {
                    const double g = pg[i];
                    if (g == 0.0 || std::isnan(g) || std::isinf(g))
                        continue;
                    const double mi = beta1_ * pm[i] + (1 - beta1_) * g;
                    const double vi =
                        beta2_ * pv[i] + (1 - beta2_) * g * g;
                    pm[i] = mi;
                    pv[i] = vi;
                    const double update =
                        lr_ * (mi / bc1) / (std::sqrt(vi / bc2) + eps_);
                    const T before = pp[i];
                    pp[i] = static_cast<T>(before - update);
                    changed |= pp[i] != before;
                }
            }
        });
    }
    return changed;
}

void
Adam::reset()
{
    t_ = 0;
    m_.clear();
    v_.clear();
}

} // namespace nnsmith::autodiff
