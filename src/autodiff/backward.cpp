#include "autodiff/backward.h"

#include <algorithm>

#include "support/logging.h"
#include "tensor/kernels.h"

namespace nnsmith::autodiff {

using graph::NodeKind;
using tensor::DType;

namespace {

/** Accumulate @p grad into @p slot (sum when already present). */
void
accumulate(std::map<int, Tensor>& grads, int value_id, const Tensor& grad)
{
    if (!grad.defined())
        return; // sentinel: no gradient for this input
    auto it = grads.find(value_id);
    if (it == grads.end()) {
        grads.emplace(value_id, grad);
        return;
    }
    Tensor& acc = it->second;
    acc = tensor::applyBinary(acc, grad, [](auto x, auto y) {
        if constexpr (std::is_integral_v<decltype(x)>)
            return tensor::wrapAdd(x, y);
        else
            return x + y;
    });
}

} // namespace

LeafGrads
backpropagate(const Graph& graph, const exec::ExecResult& exec_result,
              int target_node, const std::vector<Tensor>& grad_at_inputs)
{
    const auto order = graph.topoOrder();
    const auto target_pos =
        std::find(order.begin(), order.end(), target_node);
    NNSMITH_ASSERT(target_pos != order.end(), "target node not in graph");

    // Cotangent per value id.
    std::map<int, Tensor> grads;
    const auto& target = graph.node(target_node);
    NNSMITH_ASSERT(grad_at_inputs.size() == target.inputs.size(),
                   "cotangent arity mismatch");
    for (size_t i = 0; i < target.inputs.size(); ++i)
        accumulate(grads, target.inputs[i], grad_at_inputs[i]);

    // Walk the strict prefix of the target in reverse topological
    // order, pulling cotangents through each operator.
    for (auto it = std::make_reverse_iterator(target_pos);
         it != order.rend(); ++it) {
        const auto& node = graph.node(*it);
        if (node.kind != NodeKind::kOp)
            continue;
        // Gather output cotangents; skip nodes no gradient reaches.
        bool any = false;
        std::vector<Tensor> grad_outputs;
        for (int v : node.outputs) {
            auto found = grads.find(v);
            if (found != grads.end()) {
                grad_outputs.push_back(found->second);
                any = true;
            } else {
                const auto& t = graph.value(v).type;
                grad_outputs.push_back(
                    Tensor::zeros(t.dtype(), t.concreteShape()));
            }
        }
        if (!any)
            continue;
        std::vector<Tensor> inputs;
        std::vector<Tensor> outputs;
        for (int v : node.inputs)
            inputs.push_back(exec_result.values.at(v));
        for (int v : node.outputs)
            outputs.push_back(exec_result.values.at(v));
        const auto grad_inputs = node.op->backward(inputs, outputs,
                                                   grad_outputs);
        if (grad_inputs.empty())
            continue; // non-differentiable: cotangent absorbed
        NNSMITH_ASSERT(grad_inputs.size() == node.inputs.size(),
                       node.op->name(), " backward arity mismatch");
        for (size_t i = 0; i < node.inputs.size(); ++i)
            accumulate(grads, node.inputs[i], grad_inputs[i]);
    }

    LeafGrads leaf_grads;
    for (const auto& node : graph.nodes()) {
        if (node.dead ||
            (node.kind != NodeKind::kInput && node.kind != NodeKind::kWeight))
            continue;
        auto found = grads.find(node.outputs[0]);
        if (found != grads.end() &&
            tensor::isFloat(found->second.dtype()))
            leaf_grads.emplace(node.outputs[0], found->second);
    }
    return leaf_grads;
}

} // namespace nnsmith::autodiff
