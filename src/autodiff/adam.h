/**
 * @file
 * Adam optimizer over leaf tensors (paper §3.3: "we use Adam, an
 * adaptive learning rate scheduling algorithm", resetting state when
 * the loss function switches operators).
 */
#ifndef NNSMITH_AUTODIFF_ADAM_H
#define NNSMITH_AUTODIFF_ADAM_H

#include <map>

#include "exec/interpreter.h"
#include "tensor/tensor.h"

namespace nnsmith::autodiff {

using tensor::Tensor;

/** Standard Adam with per-leaf first/second moment state. */
class Adam {
  public:
    explicit Adam(double lr = 0.5, double beta1 = 0.9, double beta2 = 0.999,
                  double eps = 1e-8);

    /**
     * Apply one descent step to every leaf present in @p grads.
     * @return true iff at least one parameter actually changed
     *         (Algorithm 3 line 10 restarts on all-zero updates).
     */
    bool step(exec::LeafValues& leaves,
              const std::map<int, Tensor>& grads);

    /** Drop moment state (used when the active loss switches). */
    void reset();

    double learningRate() const { return lr_; }

  private:
    double lr_;
    double beta1_;
    double beta2_;
    double eps_;
    int64_t t_ = 0;
    std::map<int, Tensor> m_;
    std::map<int, Tensor> v_;
};

} // namespace nnsmith::autodiff

#endif // NNSMITH_AUTODIFF_ADAM_H
