#include "symbolic/pred.h"

#include "support/logging.h"

namespace nnsmith::symbolic {

Pred eq(ExprRef a, ExprRef b) { return {CmpOp::kEq, std::move(a), std::move(b)}; }
Pred ne(ExprRef a, ExprRef b) { return {CmpOp::kNe, std::move(a), std::move(b)}; }
Pred lt(ExprRef a, ExprRef b) { return {CmpOp::kLt, std::move(a), std::move(b)}; }
Pred le(ExprRef a, ExprRef b) { return {CmpOp::kLe, std::move(a), std::move(b)}; }
Pred gt(ExprRef a, ExprRef b) { return {CmpOp::kGt, std::move(a), std::move(b)}; }
Pred ge(ExprRef a, ExprRef b) { return {CmpOp::kGe, std::move(a), std::move(b)}; }
Pred eq(ExprRef a, int64_t b) { return eq(std::move(a), Expr::constant(b)); }
Pred le(ExprRef a, int64_t b) { return le(std::move(a), Expr::constant(b)); }
Pred lt(ExprRef a, int64_t b) { return lt(std::move(a), Expr::constant(b)); }
Pred ge(ExprRef a, int64_t b) { return ge(std::move(a), Expr::constant(b)); }
Pred gt(ExprRef a, int64_t b) { return gt(std::move(a), Expr::constant(b)); }

bool
holds(const Pred& p, const Assignment& a)
{
    const int64_t l = evaluate(p.lhs, a);
    const int64_t r = evaluate(p.rhs, a);
    switch (p.op) {
      case CmpOp::kEq: return l == r;
      case CmpOp::kNe: return l != r;
      case CmpOp::kLt: return l < r;
      case CmpOp::kLe: return l <= r;
      case CmpOp::kGt: return l > r;
      case CmpOp::kGe: return l >= r;
    }
    NNSMITH_PANIC("bad CmpOp");
}

bool
allHold(const std::vector<Pred>& ps, const Assignment& a)
{
    for (const auto& p : ps) {
        if (!holds(p, a))
            return false;
    }
    return true;
}

std::string
toString(const Pred& p)
{
    const char* op = "?";
    switch (p.op) {
      case CmpOp::kEq: op = "=="; break;
      case CmpOp::kNe: op = "!="; break;
      case CmpOp::kLt: op = "<"; break;
      case CmpOp::kLe: op = "<="; break;
      case CmpOp::kGt: op = ">"; break;
      case CmpOp::kGe: op = ">="; break;
    }
    return toString(p.lhs) + " " + op + " " + toString(p.rhs);
}

void
collectVars(const Pred& p, std::vector<VarId>& out)
{
    collectVars(p.lhs, out);
    collectVars(p.rhs, out);
}

} // namespace nnsmith::symbolic
