/**
 * @file
 * Atomic comparison predicates over symbolic integer expressions.
 *
 * Operator specifications return conjunctions of these (paper Listing 2,
 * `requires`); the solver receives them verbatim.
 */
#ifndef NNSMITH_SYMBOLIC_PRED_H
#define NNSMITH_SYMBOLIC_PRED_H

#include <string>
#include <vector>

#include "symbolic/expr.h"

namespace nnsmith::symbolic {

/** Comparison operators for atomic predicates. */
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/** An atomic predicate `lhs <op> rhs`. */
struct Pred {
    CmpOp op;
    ExprRef lhs;
    ExprRef rhs;
};

// Predicate sugar.
Pred eq(ExprRef a, ExprRef b);
Pred ne(ExprRef a, ExprRef b);
Pred lt(ExprRef a, ExprRef b);
Pred le(ExprRef a, ExprRef b);
Pred gt(ExprRef a, ExprRef b);
Pred ge(ExprRef a, ExprRef b);
Pred eq(ExprRef a, int64_t b);
Pred le(ExprRef a, int64_t b);
Pred lt(ExprRef a, int64_t b);
Pred ge(ExprRef a, int64_t b);
Pred gt(ExprRef a, int64_t b);

/** Evaluate the predicate under a concrete assignment. */
bool holds(const Pred& p, const Assignment& a);

/** All predicates in @p ps hold under @p a. */
bool allHold(const std::vector<Pred>& ps, const Assignment& a);

/** Human-readable rendering, e.g. "kh_3 <= (ih_0 + 2*pad_5)". */
std::string toString(const Pred& p);

/** Variables referenced by @p p appended to @p out (deduplicated). */
void collectVars(const Pred& p, std::vector<VarId>& out);

} // namespace nnsmith::symbolic

#endif // NNSMITH_SYMBOLIC_PRED_H
