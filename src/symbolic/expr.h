/**
 * @file
 * Symbolic integer expressions.
 *
 * Tensor shapes and operator attributes are symbolic integers during
 * graph generation (paper §3.1). Expressions form immutable DAGs shared
 * via ExprRef; a structural simplifier keeps them small and an evaluator
 * computes them under a concrete variable assignment.
 */
#ifndef NNSMITH_SYMBOLIC_EXPR_H
#define NNSMITH_SYMBOLIC_EXPR_H

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace nnsmith::symbolic {

/** Node kinds of the integer expression language. */
enum class ExprKind {
    kConst,
    kVar,
    kAdd,
    kSub,
    kMul,
    kFloorDiv, ///< floor division (like C++ / for positives)
    kMod,
    kMin,
    kMax,
    kNeg,
};

class Expr;
/** Shared immutable expression handle. */
using ExprRef = std::shared_ptr<const Expr>;

/** Variable identifier; unique within a SymbolTable. */
using VarId = uint32_t;

/** One node of a symbolic integer expression DAG. */
class Expr {
  public:
    ExprKind kind() const { return kind_; }
    int64_t value() const;       ///< kConst only
    VarId varId() const;         ///< kVar only
    const std::string& varName() const; ///< kVar only
    const ExprRef& lhs() const { return lhs_; }
    const ExprRef& rhs() const { return rhs_; }

    /** True iff this node is a constant with value @p v. */
    bool isConst(int64_t v) const;
    bool isConst() const { return kind_ == ExprKind::kConst; }
    bool isVar() const { return kind_ == ExprKind::kVar; }

    // Factories (these apply constant folding; see also simplify()).
    static ExprRef constant(int64_t v);
    static ExprRef var(VarId id, std::string name);
    static ExprRef binary(ExprKind kind, ExprRef lhs, ExprRef rhs);
    static ExprRef neg(ExprRef e);

  private:
    Expr(ExprKind kind, int64_t value, VarId var_id, std::string name,
         ExprRef lhs, ExprRef rhs);

    ExprKind kind_;
    int64_t value_ = 0;
    VarId varId_ = 0;
    std::string varName_;
    ExprRef lhs_;
    ExprRef rhs_;
};

// Operator sugar over ExprRef.
ExprRef operator+(const ExprRef& a, const ExprRef& b);
ExprRef operator-(const ExprRef& a, const ExprRef& b);
ExprRef operator*(const ExprRef& a, const ExprRef& b);
ExprRef operator+(const ExprRef& a, int64_t b);
ExprRef operator-(const ExprRef& a, int64_t b);
ExprRef operator*(const ExprRef& a, int64_t b);
/** Floor division. */
ExprRef floorDiv(const ExprRef& a, const ExprRef& b);
ExprRef floorDiv(const ExprRef& a, int64_t b);
ExprRef mod(const ExprRef& a, const ExprRef& b);
ExprRef minExpr(const ExprRef& a, const ExprRef& b);
ExprRef maxExpr(const ExprRef& a, const ExprRef& b);

/** Concrete values for symbolic variables. */
class Assignment {
  public:
    void set(VarId id, int64_t value) { values_[id] = value; }
    bool has(VarId id) const { return values_.count(id) != 0; }
    int64_t get(VarId id) const;
    size_t size() const { return values_.size(); }
    const std::unordered_map<VarId, int64_t>& values() const
    { return values_; }

  private:
    std::unordered_map<VarId, int64_t> values_;
};

/** Evaluate @p e under @p a; panics on an unbound variable. */
int64_t evaluate(const ExprRef& e, const Assignment& a);

/** Structural simplification (constant folding, identities). */
ExprRef simplify(const ExprRef& e);

/** Collect the set of variable ids referenced by @p e into @p out. */
void collectVars(const ExprRef& e, std::vector<VarId>& out);

/** Human-readable rendering, e.g. "(n + 2*pad)". */
std::string toString(const ExprRef& e);

/**
 * Allocates fresh symbolic variables with unique ids.
 *
 * One table lives per model-generation session; ids index into solver
 * variable arrays.
 */
class SymbolTable {
  public:
    /** Make a fresh variable; @p hint becomes part of its name. */
    ExprRef fresh(const std::string& hint);

    /** Number of variables created so far. */
    uint32_t count() const { return next_; }

    const std::string& name(VarId id) const;

  private:
    uint32_t next_ = 0;
    std::vector<std::string> names_;
};

} // namespace nnsmith::symbolic

#endif // NNSMITH_SYMBOLIC_EXPR_H
