#include "symbolic/expr.h"

#include <algorithm>

#include "support/logging.h"

namespace nnsmith::symbolic {

namespace {

int64_t
floorDivInt(int64_t a, int64_t b)
{
    NNSMITH_ASSERT(b != 0, "division by zero in constant fold");
    int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0)))
        --q;
    return q;
}

int64_t
floorModInt(int64_t a, int64_t b)
{
    return a - floorDivInt(a, b) * b;
}

int64_t
applyBinary(ExprKind kind, int64_t a, int64_t b)
{
    switch (kind) {
      case ExprKind::kAdd: return a + b;
      case ExprKind::kSub: return a - b;
      case ExprKind::kMul: return a * b;
      case ExprKind::kFloorDiv: return floorDivInt(a, b);
      case ExprKind::kMod: return floorModInt(a, b);
      case ExprKind::kMin: return std::min(a, b);
      case ExprKind::kMax: return std::max(a, b);
      default: NNSMITH_PANIC("applyBinary on non-binary kind");
    }
}

} // namespace

Expr::Expr(ExprKind kind, int64_t value, VarId var_id, std::string name,
           ExprRef lhs, ExprRef rhs)
    : kind_(kind), value_(value), varId_(var_id),
      varName_(std::move(name)), lhs_(std::move(lhs)), rhs_(std::move(rhs))
{
}

int64_t
Expr::value() const
{
    NNSMITH_ASSERT(kind_ == ExprKind::kConst, "value() on non-const");
    return value_;
}

VarId
Expr::varId() const
{
    NNSMITH_ASSERT(kind_ == ExprKind::kVar, "varId() on non-var");
    return varId_;
}

const std::string&
Expr::varName() const
{
    NNSMITH_ASSERT(kind_ == ExprKind::kVar, "varName() on non-var");
    return varName_;
}

bool
Expr::isConst(int64_t v) const
{
    return kind_ == ExprKind::kConst && value_ == v;
}

ExprRef
Expr::constant(int64_t v)
{
    return ExprRef(new Expr(ExprKind::kConst, v, 0, {}, nullptr, nullptr));
}

ExprRef
Expr::var(VarId id, std::string name)
{
    return ExprRef(
        new Expr(ExprKind::kVar, 0, id, std::move(name), nullptr, nullptr));
}

ExprRef
Expr::binary(ExprKind kind, ExprRef lhs, ExprRef rhs)
{
    NNSMITH_ASSERT(lhs && rhs, "binary() with null operand");
    // Constant folding at construction keeps DAGs small.
    if (lhs->isConst() && rhs->isConst())
        return constant(applyBinary(kind, lhs->value(), rhs->value()));
    // Cheap identities.
    switch (kind) {
      case ExprKind::kAdd:
        if (lhs->isConst(0)) return rhs;
        if (rhs->isConst(0)) return lhs;
        break;
      case ExprKind::kSub:
        if (rhs->isConst(0)) return lhs;
        break;
      case ExprKind::kMul:
        if (lhs->isConst(1)) return rhs;
        if (rhs->isConst(1)) return lhs;
        if (lhs->isConst(0) || rhs->isConst(0)) return constant(0);
        break;
      case ExprKind::kFloorDiv:
        if (rhs->isConst(1)) return lhs;
        break;
      default:
        break;
    }
    return ExprRef(new Expr(kind, 0, 0, {}, std::move(lhs), std::move(rhs)));
}

ExprRef
Expr::neg(ExprRef e)
{
    NNSMITH_ASSERT(e, "neg() with null operand");
    if (e->isConst())
        return constant(-e->value());
    return ExprRef(new Expr(ExprKind::kNeg, 0, 0, {}, std::move(e), nullptr));
}

ExprRef operator+(const ExprRef& a, const ExprRef& b)
{ return Expr::binary(ExprKind::kAdd, a, b); }
ExprRef operator-(const ExprRef& a, const ExprRef& b)
{ return Expr::binary(ExprKind::kSub, a, b); }
ExprRef operator*(const ExprRef& a, const ExprRef& b)
{ return Expr::binary(ExprKind::kMul, a, b); }
ExprRef operator+(const ExprRef& a, int64_t b)
{ return a + Expr::constant(b); }
ExprRef operator-(const ExprRef& a, int64_t b)
{ return a - Expr::constant(b); }
ExprRef operator*(const ExprRef& a, int64_t b)
{ return a * Expr::constant(b); }
ExprRef floorDiv(const ExprRef& a, const ExprRef& b)
{ return Expr::binary(ExprKind::kFloorDiv, a, b); }
ExprRef floorDiv(const ExprRef& a, int64_t b)
{ return floorDiv(a, Expr::constant(b)); }
ExprRef mod(const ExprRef& a, const ExprRef& b)
{ return Expr::binary(ExprKind::kMod, a, b); }
ExprRef minExpr(const ExprRef& a, const ExprRef& b)
{ return Expr::binary(ExprKind::kMin, a, b); }
ExprRef maxExpr(const ExprRef& a, const ExprRef& b)
{ return Expr::binary(ExprKind::kMax, a, b); }

int64_t
Assignment::get(VarId id) const
{
    auto it = values_.find(id);
    NNSMITH_ASSERT(it != values_.end(), "unbound variable v", id);
    return it->second;
}

int64_t
evaluate(const ExprRef& e, const Assignment& a)
{
    NNSMITH_ASSERT(e, "evaluate(null)");
    switch (e->kind()) {
      case ExprKind::kConst:
        return e->value();
      case ExprKind::kVar:
        return a.get(e->varId());
      case ExprKind::kNeg:
        return -evaluate(e->lhs(), a);
      default:
        return applyBinary(e->kind(), evaluate(e->lhs(), a),
                           evaluate(e->rhs(), a));
    }
}

ExprRef
simplify(const ExprRef& e)
{
    NNSMITH_ASSERT(e, "simplify(null)");
    switch (e->kind()) {
      case ExprKind::kConst:
      case ExprKind::kVar:
        return e;
      case ExprKind::kNeg:
        return Expr::neg(simplify(e->lhs()));
      default: {
        ExprRef l = simplify(e->lhs());
        ExprRef r = simplify(e->rhs());
        return Expr::binary(e->kind(), std::move(l), std::move(r));
      }
    }
}

void
collectVars(const ExprRef& e, std::vector<VarId>& out)
{
    if (!e)
        return;
    if (e->kind() == ExprKind::kVar) {
        if (std::find(out.begin(), out.end(), e->varId()) == out.end())
            out.push_back(e->varId());
        return;
    }
    collectVars(e->lhs(), out);
    collectVars(e->rhs(), out);
}

std::string
toString(const ExprRef& e)
{
    if (!e)
        return "<null>";
    switch (e->kind()) {
      case ExprKind::kConst:
        return std::to_string(e->value());
      case ExprKind::kVar:
        return e->varName();
      case ExprKind::kNeg:
        return "(-" + toString(e->lhs()) + ")";
      case ExprKind::kAdd:
        return "(" + toString(e->lhs()) + " + " + toString(e->rhs()) + ")";
      case ExprKind::kSub:
        return "(" + toString(e->lhs()) + " - " + toString(e->rhs()) + ")";
      case ExprKind::kMul:
        return "(" + toString(e->lhs()) + " * " + toString(e->rhs()) + ")";
      case ExprKind::kFloorDiv:
        return "(" + toString(e->lhs()) + " // " + toString(e->rhs()) + ")";
      case ExprKind::kMod:
        return "(" + toString(e->lhs()) + " % " + toString(e->rhs()) + ")";
      case ExprKind::kMin:
        return "min(" + toString(e->lhs()) + ", " + toString(e->rhs()) + ")";
      case ExprKind::kMax:
        return "max(" + toString(e->lhs()) + ", " + toString(e->rhs()) + ")";
    }
    return "?";
}

ExprRef
SymbolTable::fresh(const std::string& hint)
{
    VarId id = next_++;
    std::string name = hint + "_" + std::to_string(id);
    names_.push_back(name);
    return Expr::var(id, std::move(name));
}

const std::string&
SymbolTable::name(VarId id) const
{
    NNSMITH_ASSERT(id < names_.size(), "unknown var id ", id);
    return names_[id];
}

} // namespace nnsmith::symbolic
