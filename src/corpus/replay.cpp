#include "corpus/replay.h"

#include <algorithm>
#include <filesystem>
#include <set>

#include "backends/defects.h"
#include "backends/graph_pass.h"
#include "corpus/parser.h"
#include "difftest/compare.h"
#include "difftest/oracle.h"
#include "onnx/exporter.h"
#include "reduce/reducer.h"
#include "support/logging.h"
#include "tirlite/tir_interp.h"
#include "tirlite/tir_passes.h"

namespace nnsmith::corpus {

using backends::BackendError;
using backends::DefectRegistry;
using fuzz::BugRecord;

namespace {

std::string
joinSorted(const std::set<std::string>& items)
{
    std::string joined;
    for (const auto& item : items) {
        if (!joined.empty())
            joined += " ";
        joined += item;
    }
    return joined;
}

/** Graph repros: the difftest oracle, matched by canonical key. */
void
classifyGraph(const BugRecord& bug,
              const std::vector<backends::Backend*>& backends,
              ReplayOutcome& outcome)
{
    const auto& repro = *bug.graphRepro;
    const auto result =
        difftest::runCase(repro.graph, repro.leaves, backends);
    std::set<std::string> signals;
    bool refired = false;
    for (auto& record : fuzz::bugsFromCase(result)) {
        const std::string canonical = reduce::fingerprintKey(record);
        signals.insert(canonical);
        refired = refired || canonical == bug.dedupKey ||
                  record.dedupKey == bug.dedupKey;
    }
    if (refired) {
        outcome.status = ReplayStatus::kStillFires;
    } else if (!signals.empty()) {
        outcome.status = ReplayStatus::kChanged;
        outcome.detail = joinSorted(signals);
    } else {
        outcome.status = ReplayStatus::kFixed;
    }
}

/** Sequence repros: the bitwise tir_interp differential oracle. */
void
classifySequence(const BugRecord& bug, ReplayOutcome& outcome)
{
    const auto& repro = *bug.seqRepro;
    const bool is_crash = bug.kind == "crash";
    // The fingerprint is authoritative (the defects line is metadata a
    // hand edit could desynchronize): sequence keys are
    // "TVMLite|wrong|<defect>" for semantic records and
    // "TVMLite|wrong|tir.seq.miscompile" for the genuine miscompile,
    // which is pinned by the differential oracle instead.
    const std::string key_tail = reduce::crashKindOfKey(bug.dedupKey);
    const std::string semantic_defect =
        !is_crash && key_tail != "tir.seq.miscompile" ? key_tail : "";
    const bool is_miscompile = !is_crash && semantic_defect.empty();

    DefectRegistry::TraceScope trace_scope;
    std::vector<std::string> fired;
    try {
        const auto optimized =
            tirlite::runTirPasses(repro.program, repro.sequence, fired);
        bool miscompare = false;
        if (!repro.initial.empty()) {
            tirlite::Buffers reference = repro.initial;
            tirlite::run(repro.program, reference);
            tirlite::Buffers out = repro.initial;
            tirlite::run(optimized, out);
            miscompare = !tirlite::buffersEquivalent(reference, out);
        }
        const bool fired_target =
            !semantic_defect.empty() &&
            std::find(fired.begin(), fired.end(), semantic_defect) !=
                fired.end();
        if (is_crash) {
            outcome.status = (!fired.empty() || miscompare)
                                 ? ReplayStatus::kChanged
                                 : ReplayStatus::kFixed;
        } else if (!semantic_defect.empty()) {
            outcome.status = fired_target
                                 ? ReplayStatus::kStillFires
                                 : ((!fired.empty() || miscompare)
                                        ? ReplayStatus::kChanged
                                        : ReplayStatus::kFixed);
        } else if (is_miscompile) {
            outcome.status = fired.empty() && miscompare
                                 ? ReplayStatus::kStillFires
                                 : (!fired.empty()
                                        ? ReplayStatus::kChanged
                                        : ReplayStatus::kFixed);
        }
        if (outcome.status == ReplayStatus::kChanged) {
            std::set<std::string> signals(fired.begin(), fired.end());
            if (miscompare)
                signals.insert("interp-miscompare");
            outcome.detail = joinSorted(signals);
        }
    } catch (const BackendError& error) {
        if (is_crash && error.kind() == reduce::crashKindOfKey(bug.dedupKey)) {
            outcome.status = ReplayStatus::kStillFires;
        } else {
            outcome.status = ReplayStatus::kChanged;
            outcome.detail = "crash " + error.kind();
        }
    }
}

/**
 * Graph-level pass-sequence repros: the owning backend is its own
 * oracle — run(kO0) vs runWithPasses(sequence), with import-stage
 * semantic firings subtracted out, exactly as the pass-sequence
 * fuzzer flagged the bug. The backend is constructed fresh by name so
 * replay never depends on the campaign's backend list (mirroring
 * classifySequence, which needs no backend at all).
 */
void
classifyGraphSequence(const BugRecord& bug, ReplayOutcome& outcome)
{
    const auto& repro = *bug.graphSeqRepro;
    NNSMITH_ASSERT(backends::isGraphPassBackend(bug.backend),
                   "graph-sequence repro for non-graph-pass backend ",
                   bug.backend);
    const auto backend = bug.backend == "OrtLite"
                             ? backends::makeOrtLite()
                             : backends::makeTrtLite();
    const bool is_crash = bug.kind == "crash";
    const std::string key_tail = reduce::crashKindOfKey(bug.dedupKey);
    const std::string semantic_defect =
        !is_crash && key_tail != "graph.seq.miscompile" ? key_tail : "";
    const bool is_miscompile = !is_crash && semantic_defect.empty();

    DefectRegistry::TraceScope trace_scope;
    onnx::OnnxModel model;
    try {
        model = onnx::exportGraph(repro.graph);
    } catch (const BackendError& error) {
        outcome.status = ReplayStatus::kChanged;
        outcome.detail = "export crash " + error.kind();
        return;
    }
    const auto reference =
        backend->run(model, repro.leaves, backends::OptLevel::kO0);
    if (reference.status == backends::RunResult::Status::kCrash) {
        // An import-stage crash fires with or without passes: the
        // pass-stage defect this repro records is masked, not re-fired.
        outcome.status = ReplayStatus::kChanged;
        outcome.detail = "import crash " + reference.crashKind;
        return;
    }
    const auto result =
        backend->runWithPasses(model, repro.leaves, repro.sequence);
    if (result.status == backends::RunResult::Status::kCrash) {
        if (is_crash && result.crashKind == key_tail) {
            outcome.status = ReplayStatus::kStillFires;
        } else {
            outcome.status = ReplayStatus::kChanged;
            outcome.detail = "crash " + result.crashKind;
        }
        return;
    }
    const auto fired = backends::subtractFired(result.firedSemantic,
                                               reference.firedSemantic);
    // Mirrors the fuzzer's flag condition: a miscompare only counts
    // when no pass-stage defect explains it and the reference is
    // numerically meaningful.
    const bool miscompare =
        fired.empty() && difftest::allFinite(reference.outputs) &&
        !difftest::allClose(result.outputs, reference.outputs,
                            difftest::CompareOptions());
    const bool fired_target =
        !semantic_defect.empty() &&
        std::find(fired.begin(), fired.end(), semantic_defect) !=
            fired.end();
    if (is_crash) {
        outcome.status = (!fired.empty() || miscompare)
                             ? ReplayStatus::kChanged
                             : ReplayStatus::kFixed;
    } else if (!semantic_defect.empty()) {
        outcome.status = fired_target
                             ? ReplayStatus::kStillFires
                             : ((!fired.empty() || miscompare)
                                    ? ReplayStatus::kChanged
                                    : ReplayStatus::kFixed);
    } else if (is_miscompile) {
        outcome.status = miscompare
                             ? ReplayStatus::kStillFires
                             : (!fired.empty() ? ReplayStatus::kChanged
                                               : ReplayStatus::kFixed);
    }
    if (outcome.status == ReplayStatus::kChanged) {
        std::set<std::string> signals(fired.begin(), fired.end());
        if (miscompare)
            signals.insert("output-miscompare");
        outcome.detail = joinSorted(signals);
    }
}

} // namespace

std::string
replayStatusName(ReplayStatus status)
{
    switch (status) {
      case ReplayStatus::kStillFires: return "still-fires";
      case ReplayStatus::kChanged: return "changed";
      case ReplayStatus::kFixed: return "fixed";
      case ReplayStatus::kParseError: return "parse-error";
    }
    NNSMITH_PANIC("bad ReplayStatus");
}

ReplayOutcome
replayRepro(const BugRecord& bug,
            const std::vector<backends::Backend*>& backends)
{
    ReplayOutcome outcome;
    outcome.fingerprint = bug.dedupKey;
    outcome.kind = bug.kind;
    if (bug.graphRepro != nullptr)
        classifyGraph(bug, backends, outcome);
    else if (bug.graphSeqRepro != nullptr)
        classifyGraphSequence(bug, outcome);
    else if (bug.seqRepro != nullptr)
        classifySequence(bug, outcome);
    else {
        outcome.status = ReplayStatus::kParseError;
        outcome.detail = "repro carries no replayable artifact";
    }
    return outcome;
}

ReplayResult
replayCorpus(const std::string& dir,
             const std::vector<backends::Backend*>& backends)
{
    ReplayResult result;
    for (const auto& entry : loadCorpusIndex(dir)) {
        ReplayOutcome outcome;
        outcome.fingerprint = entry.fingerprint;
        outcome.file = entry.file;
        outcome.kind = entry.kind;
        try {
            const auto path =
                (std::filesystem::path(dir) / entry.file).string();
            const BugRecord bug = parseRepro(readCorpusFile(path));
            if (bug.dedupKey != entry.fingerprint)
                throw ParseError("index fingerprint '" +
                                 entry.fingerprint +
                                 "' disagrees with the file's '" +
                                 bug.dedupKey + "'");
            if (bug.kind != entry.kind)
                throw ParseError("index kind '" + entry.kind +
                                 "' disagrees with the file's '" +
                                 bug.kind + "'");
            outcome = replayRepro(bug, backends);
            outcome.file = entry.file;
        } catch (const ParseError& error) {
            outcome.status = ReplayStatus::kParseError;
            outcome.detail = error.what();
        } catch (const std::exception& error) {
            // Malformed input is a verdict, not a crash: whatever a
            // hand-edited repro trips downstream (an interpreter or
            // backend assertion), the corpus entry takes the blame and
            // the rest of the replay — and the campaign — proceeds.
            outcome.status = ReplayStatus::kParseError;
            outcome.detail = std::string("replay failed: ") + error.what();
        }
        switch (outcome.status) {
          case ReplayStatus::kStillFires: ++result.stillFires; break;
          case ReplayStatus::kChanged: ++result.changed; break;
          case ReplayStatus::kFixed: ++result.fixed; break;
          case ReplayStatus::kParseError: ++result.parseErrors; break;
        }
        result.outcomes.push_back(std::move(outcome));
    }
    return result;
}

std::string
renderRegressions(const ReplayResult& result)
{
    std::string out = "fingerprint\tfile\tkind\tstatus\tdetail\n";
    for (const auto& outcome : result.outcomes) {
        out += outcome.fingerprint + "\t" + outcome.file + "\t" +
               outcome.kind + "\t" + replayStatusName(outcome.status) +
               "\t" + outcome.detail + "\n";
    }
    return out;
}

void
writeRegressions(const std::string& dir, const ReplayResult& result)
{
    const auto path = std::filesystem::path(dir) / "regressions.tsv";
    writeCorpusFile(path.string(), renderRegressions(result));
}

} // namespace nnsmith::corpus
