#include "corpus/corpus.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "backends/defects.h"
#include "onnx/exporter.h"
#include "support/logging.h"

namespace nnsmith::corpus {

using backends::BackendError;
using fuzz::BugRecord;

namespace {

void
renderLeaves(std::ostringstream& os, const exec::LeafValues& leaves)
{
    // Repros must be replayable: every element, at %.17g so float
    // bit patterns round-trip (matching the seq-repro buffer dump;
    // Tensor::toString truncates and prints 6 digits).
    char buffer[64];
    for (const auto& [value_id, tensor] : leaves) {
        os << "  %" << value_id << ": "
           << tensor::dtypeName(tensor.dtype())
           << tensor.shape().toString() << " =";
        for (int64_t i = 0; i < tensor.numel(); ++i) {
            std::snprintf(buffer, sizeof(buffer), " %.17g",
                          tensor.scalarAt(i));
            os << buffer;
        }
        os << "\n";
    }
}

} // namespace

std::string
renderRepro(const BugRecord& bug)
{
    std::ostringstream os;
    os << schema::kMagic << "\n";
    os << schema::kFingerprint << bug.dedupKey << "\n";
    os << schema::kBackend << bug.backend << "\n";
    os << schema::kKind << bug.kind << "\n";
    os << schema::kDetail << bug.detail << "\n";
    // The minimized repro's own trigger trace; the discovery-time
    // trace is kept alongside when reduction stripped co-triggered
    // noise from it.
    const auto& defects =
        bug.minimized ? bug.minimizedDefects : bug.defects;
    os << schema::kDefects;
    for (const auto& defect : defects)
        os << " " << defect;
    os << "\n";
    if (bug.minimized && bug.minimizedDefects != bug.defects) {
        os << schema::kDiscoveryDefects;
        for (const auto& defect : bug.defects)
            os << " " << defect;
        os << "\n";
    }
    if (bug.minimized) {
        os << schema::kReduction << bug.originalSize << " -> "
           << bug.minimizedSize
           << (bug.graphRepro != nullptr ? " op nodes" : " passes")
           << " (ddmin)\n";
    } else {
        os << schema::kReduction << schema::kReductionNone << "\n";
    }
    if (bug.graphRepro != nullptr) {
        const auto& repro = *bug.graphRepro;
        os << "\n" << schema::kSectionGraph << "\n"
           << repro.graph.toString() << "\n";
        os << "\n" << schema::kSectionLeaves << "\n";
        renderLeaves(os, repro.leaves);
        // The deployable artifact; for export-crash bugs the export
        // *is* the defect, so the graph rendering above is the repro.
        try {
            const auto model = onnx::exportGraph(repro.graph);
            os << "\n" << schema::kSectionOnnx << "\n"
               << model.serialize() << "\n";
        } catch (const BackendError& error) {
            os << "\n" << schema::kSectionOnnx << "\n(export crashes: "
               << error.kind()
               << " — replay the graph above through the exporter)\n";
        }
    } else if (bug.graphSeqRepro != nullptr) {
        // A graph-level pass-sequence repro (backends/graph_pass.h):
        // sequence first (the reduced dimension), then the model and
        // its leaves. Replay re-exports the graph, so no onnx section.
        const auto& repro = *bug.graphSeqRepro;
        os << "\n" << schema::kSectionSequence << "\n";
        for (size_t i = 0; i < repro.sequence.size(); ++i)
            os << (i > 0 ? "," : "") << repro.sequence[i];
        os << "\n\n" << schema::kSectionGraph << "\n"
           << repro.graph.toString() << "\n";
        os << "\n" << schema::kSectionLeaves << "\n";
        renderLeaves(os, repro.leaves);
    } else if (bug.seqRepro != nullptr) {
        const auto& repro = *bug.seqRepro;
        os << "\n" << schema::kSectionSequence << "\n";
        for (size_t i = 0; i < repro.sequence.size(); ++i)
            os << (i > 0 ? "," : "") << repro.sequence[i];
        os << "\n\n" << schema::kSectionProgram << "\n"
           << repro.program.toString() << "\n";
        if (!repro.initial.empty()) {
            os << "\n" << schema::kSectionBuffers << "\n";
            for (size_t b = 0; b < repro.initial.size(); ++b) {
                os << "  buffer[" << b << "]:";
                char buffer[64];
                for (const double v : repro.initial[b]) {
                    std::snprintf(buffer, sizeof(buffer), " %.17g", v);
                    os << buffer;
                }
                os << "\n";
            }
        }
    }
    return os.str();
}

std::vector<CorpusEntry>
parseIndexTsv(const std::string& text)
{
    std::vector<CorpusEntry> entries;
    std::istringstream is(text);
    std::string line;
    if (!std::getline(is, line) || line != schema::kIndexHeader)
        throw ParseError("index.tsv: missing or wrong header line (want '" +
                         std::string(schema::kIndexHeader) + "')");
    size_t row = 1;
    while (std::getline(is, line)) {
        ++row;
        if (line.empty())
            continue;
        std::vector<std::string> cols;
        size_t start = 0;
        while (true) {
            const auto tab = line.find('\t', start);
            cols.push_back(line.substr(start, tab == std::string::npos
                                                  ? std::string::npos
                                                  : tab - start));
            if (tab == std::string::npos)
                break;
            start = tab + 1;
        }
        if (cols.size() != 5)
            throw ParseError("index.tsv row " + std::to_string(row) +
                             ": expected 5 tab-separated columns, got " +
                             std::to_string(cols.size()));
        auto parse_size = [&](const std::string& field,
                              const char* what) -> size_t {
            // Digits only: stoull quietly wraps "-1", so a sign (or
            // anything else non-numeric) must be rejected up front.
            bool digits = !field.empty();
            for (const char c : field)
                digits = digits && c >= '0' && c <= '9';
            unsigned long long value = 0;
            try {
                if (digits)
                    value = std::stoull(field);
            } catch (const std::exception&) {
                digits = false;
            }
            if (!digits)
                throw ParseError("index.tsv row " + std::to_string(row) +
                                 ": non-numeric " + what + " column '" +
                                 field + "'");
            return static_cast<size_t>(value);
        };
        CorpusEntry entry;
        entry.fingerprint = cols[0];
        entry.file = cols[1];
        entry.kind = cols[2];
        entry.originalSize = parse_size(cols[3], "original");
        entry.minimizedSize = parse_size(cols[4], "minimized");
        if (entry.fingerprint.empty() || entry.file.empty())
            throw ParseError("index.tsv row " + std::to_string(row) +
                             ": empty fingerprint or file column");
        entries.push_back(std::move(entry));
    }
    return entries;
}

std::vector<CorpusEntry>
loadCorpusIndex(const std::string& dir)
{
    const auto path = std::filesystem::path(dir) / "index.tsv";
    std::error_code ec;
    if (!std::filesystem::exists(path, ec) || ec)
        throw ParseError("corpus: no index.tsv in '" + dir + "'");
    return parseIndexTsv(readCorpusFile(path.string()));
}

std::string
readCorpusFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw ParseError("corpus: cannot read '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void
writeCorpusFile(const std::string& path, const std::string& content)
{
    FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr)
        fatal("corpus: cannot write " + path);
    std::fwrite(content.data(), 1, content.size(), file);
    std::fclose(file);
}

} // namespace nnsmith::corpus
