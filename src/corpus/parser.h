/**
 * @file
 * Text parsers for the repro-corpus format (corpus/corpus.h) — the
 * inverse of `renderRepro`.
 *
 * `parseRepro` turns one `*.repro.txt` back into a replayable
 * fuzz::BugRecord: the serialized graph rendering is rebuilt into a
 * concrete graph::Graph through the operator registry (unknown ops
 * are a ParseError, not a panic), leaf buffers are re-bound by value
 * id, TIR programs are re-parsed into tirlite::TirProgram trees, and
 * pass sequences are validated against the pass registry. Every
 * malformed input — truncated file, unknown op or pass, NaN/Inf
 * buffer literal, arity or shape mismatch — throws corpus::ParseError;
 * parsing never crashes and never trips an internal assertion.
 *
 * For canonical repros (anything the reducer minimized — its rebuilt
 * subgraphs number nodes and values densely in topological order)
 * the round trip is exact: `renderRepro(parseRepro(text)) == text`,
 * byte for byte. Raw (unminimized) graph repros may carry gappy value
 * ids from generation; they parse and replay identically but
 * re-serialize with renumbered ids.
 */
#ifndef NNSMITH_CORPUS_PARSER_H
#define NNSMITH_CORPUS_PARSER_H

#include <map>
#include <string>

#include "corpus/corpus.h"
#include "graph/graph.h"
#include "tirlite/tir.h"

namespace nnsmith::corpus {

/**
 * Parse a full repro document into a replayable bug record.
 * `dedupKey` is the file's fingerprint line. Throws ParseError.
 */
fuzz::BugRecord parseRepro(const std::string& text);

/**
 * Parse a `graph { ... }` rendering (graph::Graph::toString) into a
 * concrete graph. When @p id_map is non-null it receives the mapping
 * from serialized value ids to the rebuilt graph's value ids (the
 * identity for canonical repros). Throws ParseError.
 */
graph::Graph parseGraphText(const std::string& text,
                            std::map<int, int>* id_map = nullptr);

/**
 * Parse a TIRLite program rendering (TirProgram::toString): buffer
 * declarations followed by a loop nest. Throws ParseError.
 */
tirlite::TirProgram parseTirProgramText(const std::string& text);

} // namespace nnsmith::corpus

#endif // NNSMITH_CORPUS_PARSER_H
