#include "corpus/parser.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "backends/graph_pass.h"
#include "ops/registry.h"
#include "reduce/reducer.h"
#include "tensor/tensor.h"
#include "tirlite/tir_passes.h"

namespace nnsmith::corpus {

using fuzz::BugRecord;
using tensor::DType;
using tensor::Shape;
using tensor::Tensor;
using tensor::TensorType;
using tirlite::TirExpr;
using tirlite::TirExprKind;
using tirlite::TirExprRef;
using tirlite::TirProgram;
using tirlite::TirStmt;
using tirlite::TirStmtRef;

namespace {

[[noreturn]] void
fail(const std::string& what)
{
    throw ParseError("repro parse: " + what);
}

/** Split into lines; a trailing newline adds no empty line. */
std::vector<std::string>
splitLines(const std::string& text)
{
    std::vector<std::string> lines;
    size_t start = 0;
    while (start <= text.size()) {
        const auto nl = text.find('\n', start);
        if (nl == std::string::npos) {
            if (start < text.size())
                lines.push_back(text.substr(start));
            break;
        }
        lines.push_back(text.substr(start, nl - start));
        start = nl + 1;
    }
    return lines;
}

bool
startsWith(const std::string& s, const std::string& prefix)
{
    return s.rfind(prefix, 0) == 0;
}

/** Strict base-10 integer over the whole token. */
int64_t
parseIntToken(const std::string& token, const char* what)
{
    if (token.empty())
        fail(std::string("empty ") + what);
    size_t pos = token[0] == '-' ? 1 : 0;
    if (pos == token.size())
        fail(std::string("malformed ") + what + " '" + token + "'");
    for (size_t i = pos; i < token.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(token[i])))
            fail(std::string("malformed ") + what + " '" + token + "'");
    }
    errno = 0;
    char* end = nullptr;
    const long long value = std::strtoll(token.c_str(), &end, 10);
    if (errno != 0 || end != token.c_str() + token.size())
        fail(std::string("out-of-range ") + what + " '" + token + "'");
    return value;
}

/** Finite double over the whole token; NaN/Inf are parse errors. */
double
parseFiniteDouble(const std::string& token, const char* what)
{
    if (token.empty())
        fail(std::string("empty ") + what);
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size())
        fail(std::string("malformed ") + what + " '" + token + "'");
    if (!std::isfinite(value))
        fail(std::string("non-finite ") + what + " '" + token +
             "' (NaN/Inf literals are not replayable)");
    return value;
}

std::vector<std::string>
splitOn(const std::string& s, char sep)
{
    std::vector<std::string> parts;
    size_t start = 0;
    while (true) {
        const auto at = s.find(sep, start);
        parts.push_back(s.substr(start, at == std::string::npos
                                            ? std::string::npos
                                            : at - start));
        if (at == std::string::npos)
            break;
        start = at + 1;
    }
    return parts;
}

/** Split on commas outside '[...]' — "%0:f32[1,2], %1:f32[2]" has
 *  shape commas that must not separate list items. */
std::vector<std::string>
splitTopLevel(const std::string& s)
{
    std::vector<std::string> parts;
    size_t start = 0;
    int depth = 0;
    for (size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '[')
            ++depth;
        else if (s[i] == ']')
            --depth;
        else if (s[i] == ',' && depth == 0) {
            parts.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    parts.push_back(s.substr(start));
    return parts;
}

/** "f32[2,3]" -> concrete dtype + shape. */
std::pair<DType, Shape>
parseTypeToken(const std::string& token)
{
    const auto open = token.find('[');
    if (open == std::string::npos || token.back() != ']')
        fail("malformed tensor type '" + token + "'");
    DType dtype;
    try {
        dtype = tensor::dtypeFromName(token.substr(0, open));
    } catch (const FatalError&) {
        fail("unknown dtype in tensor type '" + token + "'");
    }
    Shape shape;
    const std::string dims = token.substr(open + 1,
                                          token.size() - open - 2);
    if (!dims.empty()) {
        for (const auto& dim : splitOn(dims, ',')) {
            const int64_t value = parseIntToken(dim, "shape dim");
            if (value < 0)
                fail("negative dim in tensor type '" + token + "'");
            shape.dims.push_back(value);
        }
    }
    return {dtype, shape};
}

// ---- graph text -----------------------------------------------------------

struct GraphOutput {
    int id = 0;
    DType dtype = DType::kF32;
    Shape shape;
};

GraphOutput
parseGraphOutput(const std::string& token)
{
    // "%7:f32[2,3]"
    if (token.size() < 2 || token[0] != '%')
        fail("malformed graph output '" + token + "'");
    const auto colon = token.find(':');
    if (colon == std::string::npos)
        fail("malformed graph output '" + token + "'");
    GraphOutput out;
    out.id = static_cast<int>(
        parseIntToken(token.substr(1, colon - 1), "value id"));
    std::tie(out.dtype, out.shape) = parseTypeToken(token.substr(colon + 1));
    return out;
}

graph::Graph
parseGraphLines(const std::vector<std::string>& lines, size_t begin,
                size_t end, std::map<int, int>* id_map)
{
    graph::Graph g;
    std::map<int, int> map; // serialized value id -> rebuilt id
    const auto& registry = ops::OpRegistry::global();

    for (size_t i = begin; i < end; ++i) {
        const std::string& raw = lines[i];
        if (!startsWith(raw, "  "))
            fail("graph line " + std::to_string(i + 1) +
                 " is not indented: '" + raw + "'");
        const std::string line = raw.substr(2);
        const auto eq = line.find(" = ");
        if (eq == std::string::npos)
            fail("graph line without ' = ': '" + line + "'");

        std::vector<GraphOutput> outputs;
        for (const auto& token : splitTopLevel(line.substr(0, eq))) {
            const auto trimmed =
                token.rfind(' ', 0) == 0 ? token.substr(1) : token;
            outputs.push_back(parseGraphOutput(trimmed));
        }
        if (outputs.empty())
            fail("graph line with no outputs: '" + line + "'");

        std::string rhs = line.substr(eq + 3);
        const auto open = rhs.rfind('(');
        if (open == std::string::npos || rhs.back() != ')')
            fail("graph line without input list: '" + line + "'");
        const std::string head = rhs.substr(0, open);
        const std::string args =
            rhs.substr(open + 1, rhs.size() - open - 2);

        std::vector<int> input_ids;
        if (!args.empty()) {
            for (const auto& token : splitOn(args, ',')) {
                const auto trimmed =
                    token.rfind(' ', 0) == 0 ? token.substr(1) : token;
                if (trimmed.empty() || trimmed[0] != '%')
                    fail("malformed graph input '" + trimmed + "'");
                input_ids.push_back(static_cast<int>(
                    parseIntToken(trimmed.substr(1), "value id")));
            }
        }

        if (head == "Placeholder") {
            // Flagged cases are concrete: generation promotes every
            // placeholder before execution, and an unpromoted one
            // panics the interpreter — not a replayable repro.
            fail("placeholder leaves are not executable: '" + line + "'");
        }
        if (head == "Input" || head == "Weight") {
            if (outputs.size() != 1 || !input_ids.empty())
                fail("malformed leaf line: '" + line + "'");
            const auto kind = head == "Input" ? graph::NodeKind::kInput
                                              : graph::NodeKind::kWeight;
            if (map.count(outputs[0].id) != 0)
                fail("value %" + std::to_string(outputs[0].id) +
                     " produced twice");
            map[outputs[0].id] = g.addLeaf(
                kind,
                TensorType::concrete(outputs[0].dtype, outputs[0].shape),
                "");
            continue;
        }

        // Operator: "Name{a=1,b=2}(...)".
        const auto brace = head.find('{');
        if (brace == std::string::npos || head.back() != '}')
            fail("malformed operator spelling '" + head + "'");
        const std::string op_name = head.substr(0, brace);
        const auto* meta = registry.find(op_name);
        if (meta == nullptr)
            fail("unknown operator '" + op_name + "'");
        ops::AttrMap attrs;
        const std::string body =
            head.substr(brace + 1, head.size() - brace - 2);
        if (!body.empty()) {
            for (const auto& item : splitOn(body, ',')) {
                const auto at = item.find('=');
                if (at == std::string::npos)
                    fail("malformed attribute '" + item + "' in '" +
                         head + "'");
                attrs[item.substr(0, at)] =
                    parseIntToken(item.substr(at + 1), "attribute value");
            }
        }

        std::vector<int> inputs;
        std::vector<DType> in_dtypes;
        for (const int id : input_ids) {
            const auto found = map.find(id);
            if (found == map.end())
                fail("graph input %" + std::to_string(id) +
                     " not yet produced (not topological order?)");
            inputs.push_back(found->second);
            in_dtypes.push_back(g.value(found->second).type.dtype());
        }
        std::vector<TensorType> out_types;
        std::vector<DType> out_dtypes;
        for (const auto& out : outputs) {
            out_types.push_back(TensorType::concrete(out.dtype, out.shape));
            out_dtypes.push_back(out.dtype);
        }

        // Registry reconstruction and graph insertion assert arity and
        // attribute completeness; on malformed input those internal
        // checks must surface as structured parse errors.
        int node_id = -1;
        try {
            auto op = meta->reconstruct(attrs);
            op->setDTypes(ops::DTypeCombo{in_dtypes, out_dtypes});
            node_id = g.addOp(std::shared_ptr<ops::OpBase>(std::move(op)),
                              inputs, out_types);
        } catch (const ParseError&) {
            throw;
        } catch (const std::exception& error) {
            // Registry reconstruction asserts arity/attribute
            // completeness in op-specific ways (PanicError, map::at,
            // ...); at this boundary they all mean "malformed input".
            fail("cannot rebuild operator '" + head +
                 "': " + error.what());
        }
        const auto& node = g.node(node_id);
        for (size_t o = 0; o < outputs.size(); ++o) {
            if (map.count(outputs[o].id) != 0)
                fail("value %" + std::to_string(outputs[o].id) +
                     " produced twice");
            map[outputs[o].id] =
                node.outputs[o];
        }
    }
    if (id_map != nullptr)
        *id_map = std::move(map);
    return g;
}

// ---- TIR text -------------------------------------------------------------

TirExprRef
parseTirExpr(const std::string& s, size_t& pos, size_t n_buffers,
             int depth)
{
    // Untrusted input: bound recursion so crafted nesting throws a
    // ParseError instead of overflowing the stack (well past
    // anything randomProgram/mutate emit).
    if (depth > 200)
        fail("TIR expression nests too deeply in '" + s + "'");
    auto expect = [&](char c) {
        if (pos >= s.size() || s[pos] != c)
            fail("TIR expression: expected '" + std::string(1, c) +
                 "' at offset " + std::to_string(pos) + " in '" + s + "'");
        ++pos;
    };
    if (pos >= s.size())
        fail("truncated TIR expression in '" + s + "'");

    // Intrinsics.
    for (const auto& [name, kind] :
         {std::pair<const char*, TirExprKind>{"sqrtf(", TirExprKind::kSqrtf},
          {"expf(", TirExprKind::kExpf},
          {"tanhf(", TirExprKind::kTanhf}}) {
        const size_t len = std::strlen(name);
        if (s.compare(pos, len, name) == 0) {
            pos += len;
            auto a = parseTirExpr(s, pos, n_buffers, depth + 1);
            expect(')');
            return TirExpr::intrinsic(kind, std::move(a));
        }
    }

    const char c = s[pos];
    if (c == '(') {
        ++pos;
        auto a = parseTirExpr(s, pos, n_buffers, depth + 1);
        expect(' ');
        const auto sp = s.find(' ', pos);
        if (sp == std::string::npos)
            fail("truncated TIR binary operator in '" + s + "'");
        const std::string op = s.substr(pos, sp - pos);
        pos = sp + 1;
        TirExprKind kind;
        if (op == "+") kind = TirExprKind::kAdd;
        else if (op == "-") kind = TirExprKind::kSub;
        else if (op == "*") kind = TirExprKind::kMul;
        else if (op == "/") kind = TirExprKind::kDiv;
        else if (op == "%") kind = TirExprKind::kMod;
        else if (op == "min") kind = TirExprKind::kMin;
        else if (op == "max") kind = TirExprKind::kMax;
        else fail("unknown TIR operator '" + op + "' in '" + s + "'");
        auto b = parseTirExpr(s, pos, n_buffers, depth + 1);
        expect(')');
        return TirExpr::binary(kind, std::move(a), std::move(b));
    }
    if (c == 'b' && pos + 1 < s.size() &&
        std::isdigit(static_cast<unsigned char>(s[pos + 1]))) {
        ++pos;
        size_t start = pos;
        while (pos < s.size() &&
               std::isdigit(static_cast<unsigned char>(s[pos])))
            ++pos;
        const int64_t buffer = parseIntToken(
            s.substr(start, pos - start), "buffer id");
        if (static_cast<size_t>(buffer) >= n_buffers)
            fail("load from undeclared buffer b" +
                 std::to_string(buffer) + " in '" + s + "'");
        expect('[');
        auto index = parseTirExpr(s, pos, n_buffers, depth + 1);
        expect(']');
        return TirExpr::load(static_cast<int>(buffer), std::move(index));
    }
    if (c == 'i' && pos + 1 < s.size() &&
        std::isdigit(static_cast<unsigned char>(s[pos + 1]))) {
        ++pos;
        size_t start = pos;
        while (pos < s.size() &&
               std::isdigit(static_cast<unsigned char>(s[pos])))
            ++pos;
        return TirExpr::loopVar(static_cast<int>(parseIntToken(
            s.substr(start, pos - start), "loop var depth")));
    }
    // Numeric literal: integer-looking tokens are int immediates, the
    // rest (decimal point / exponent) float immediates.
    size_t start = pos;
    while (pos < s.size()) {
        const char d = s[pos];
        const bool in_exponent =
            pos > start && (s[pos - 1] == 'e' || s[pos - 1] == 'E');
        if (std::isdigit(static_cast<unsigned char>(d)) || d == '.' ||
            d == 'e' || d == 'E' || (d == '-' && (pos == start ||
                                                  in_exponent)) ||
            (d == '+' && in_exponent)) {
            ++pos;
        } else {
            break;
        }
    }
    const std::string token = s.substr(start, pos - start);
    bool integral = !token.empty();
    for (size_t i = token[0] == '-' ? 1 : 0; i < token.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(token[i])))
            integral = false;
    }
    if (integral)
        return TirExpr::intImm(parseIntToken(token, "int immediate"));
    return TirExpr::floatImm(parseFiniteDouble(token, "float immediate"));
}

TirStmtRef parseTirBlock(const std::vector<std::string>& lines,
                         size_t& pos, size_t end, int indent,
                         size_t n_buffers, int depth);

TirStmtRef
parseTirStmt(const std::vector<std::string>& lines, size_t& pos,
             size_t end, int indent, size_t n_buffers, int depth)
{
    const std::string pad(static_cast<size_t>(indent), ' ');
    const std::string line = lines[pos].substr(pad.size());
    if (startsWith(line, "for i")) {
        // "for i0 in 0..4 {"
        std::istringstream is(line.substr(5));
        std::string depth_tok;
        is >> depth_tok;
        std::string in_tok, range_tok, brace_tok;
        is >> in_tok >> range_tok >> brace_tok;
        if (in_tok != "in" || brace_tok != "{" || !is.eof() ||
            !startsWith(range_tok, "0.."))
            fail("malformed for line '" + line + "'");
        const int loop_depth = static_cast<int>(
            parseIntToken(depth_tok, "loop depth"));
        if (loop_depth < 0)
            fail("negative loop depth in '" + line +
                 "' (the interpreter indexes its loop-var environment "
                 "by depth)");
        const int64_t extent =
            parseIntToken(range_tok.substr(3), "loop extent");
        if (extent < 0)
            fail("negative loop extent in '" + line + "'");
        ++pos;
        auto body =
            parseTirBlock(lines, pos, end, indent + 2, n_buffers,
                          depth + 1);
        if (pos >= end || lines[pos] != pad + "}")
            fail("for loop '" + line + "' is missing its closing '}'");
        ++pos;
        return TirStmt::forLoop(loop_depth, extent, std::move(body));
    }
    // "b1[(i0 % 4)] = expr;"
    if (line.size() < 2 || line[0] != 'b' ||
        !std::isdigit(static_cast<unsigned char>(line[1])))
        fail("unrecognized TIR statement '" + line + "'");
    size_t at = 1;
    while (at < line.size() &&
           std::isdigit(static_cast<unsigned char>(line[at])))
        ++at;
    const int64_t buffer =
        parseIntToken(line.substr(1, at - 1), "buffer id");
    if (static_cast<size_t>(buffer) >= n_buffers)
        fail("store to undeclared buffer b" + std::to_string(buffer) +
             " in '" + line + "'");
    if (at >= line.size() || line[at] != '[')
        fail("malformed store '" + line + "'");
    ++at;
    auto index = parseTirExpr(line, at, n_buffers, 0);
    if (line.compare(at, 4, "] = ") != 0)
        fail("malformed store '" + line + "'");
    at += 4;
    auto value = parseTirExpr(line, at, n_buffers, 0);
    if (at + 1 != line.size() || line[at] != ';')
        fail("store line has trailing garbage: '" + line + "'");
    ++pos;
    return TirStmt::store(static_cast<int>(buffer), std::move(index),
                          std::move(value));
}

TirStmtRef
parseTirBlock(const std::vector<std::string>& lines, size_t& pos,
              size_t end, int indent, size_t n_buffers, int depth)
{
    if (depth > 100)
        fail("TIR loops nest too deeply at line " +
             std::to_string(pos + 1));
    const std::string pad(static_cast<size_t>(indent), ' ');
    std::vector<TirStmtRef> stmts;
    while (pos < end) {
        const std::string& line = lines[pos];
        if (!startsWith(line, pad) || line.size() == pad.size() ||
            line[pad.size()] == ' ' || line[pad.size()] == '}')
            break;
        stmts.push_back(
            parseTirStmt(lines, pos, end, indent, n_buffers, depth));
    }
    if (stmts.empty())
        fail("empty TIR block at line " + std::to_string(pos + 1));
    return stmts.size() == 1 ? std::move(stmts[0])
                             : TirStmt::seq(std::move(stmts));
}

TirProgram
parseTirProgramLines(const std::vector<std::string>& lines, size_t begin,
                     size_t end)
{
    TirProgram program;
    size_t pos = begin;
    bool inputs_done = false;
    while (pos < end && startsWith(lines[pos], "buffer b")) {
        // "buffer b0[4] (input)" / "buffer b1[4]"
        const std::string& line = lines[pos];
        const auto open = line.find('[');
        const auto close = line.find(']');
        if (open == std::string::npos || close == std::string::npos ||
            close < open)
            fail("malformed buffer declaration '" + line + "'");
        const int64_t id =
            parseIntToken(line.substr(8, open - 8), "buffer id");
        if (static_cast<size_t>(id) != program.bufferSizes.size())
            fail("buffer declarations out of order at '" + line + "'");
        const int64_t size = parseIntToken(
            line.substr(open + 1, close - open - 1), "buffer size");
        if (size <= 0)
            fail("non-positive buffer size in '" + line + "'");
        const std::string tail = line.substr(close + 1);
        if (tail == " (input)") {
            if (inputs_done)
                fail("input buffer after a non-input one: '" + line + "'");
            ++program.numInputs;
        } else if (tail.empty()) {
            inputs_done = true;
        } else {
            fail("trailing garbage in buffer declaration '" + line + "'");
        }
        program.bufferSizes.push_back(size);
        ++pos;
    }
    if (program.bufferSizes.empty())
        fail("TIR program without buffer declarations");
    program.body = parseTirBlock(lines, pos, end, 0,
                                 program.bufferSizes.size(), 0);
    if (pos != end)
        fail("trailing garbage after TIR program at line " +
             std::to_string(pos + 1));
    return program;
}

// ---- repro document -------------------------------------------------------

/** Cursor over the document's lines with prefix-checked accessors. */
struct Cursor {
    const std::vector<std::string>& lines;
    size_t pos = 0;

    bool done() const { return pos >= lines.size(); }

    const std::string&
    next(const char* what)
    {
        if (done())
            fail(std::string("truncated file: expected ") + what);
        return lines[pos++];
    }

    std::string
    field(const char* prefix)
    {
        const std::string& line = next(prefix);
        if (!startsWith(line, prefix))
            fail(std::string("expected '") + prefix + "' line, got '" +
                 line + "'");
        return line.substr(std::strlen(prefix));
    }

    /** Consume the (one or more) blank lines between sections. */
    void
    blanks()
    {
        if (!next("blank line").empty())
            fail("expected blank line before section at line " +
                 std::to_string(pos));
        while (!done() && lines[pos].empty())
            ++pos;
    }
};

std::vector<std::string>
parseDefectList(const std::string& rest)
{
    std::vector<std::string> defects;
    std::istringstream is(rest);
    std::string token;
    while (is >> token)
        defects.push_back(token);
    return defects;
}

exec::LeafValues
parseLeafLine(const std::string& raw, const graph::Graph& g,
              const std::map<int, int>& id_map)
{
    // "  %3: f32[2,2] = 1 2 3 4"
    if (!startsWith(raw, "  %"))
        fail("malformed leaf line '" + raw + "'");
    const auto colon = raw.find(": ");
    if (colon == std::string::npos)
        fail("malformed leaf line '" + raw + "'");
    const int old_id = static_cast<int>(
        parseIntToken(raw.substr(3, colon - 3), "leaf value id"));
    const auto eq = raw.find(" = ", colon);
    if (eq == std::string::npos)
        fail("leaf line without values: '" + raw + "'");
    const auto [dtype, shape] =
        parseTypeToken(raw.substr(colon + 2, eq - colon - 2));

    const auto mapped = id_map.find(old_id);
    if (mapped == id_map.end())
        fail("leaf %" + std::to_string(old_id) +
             " does not name a graph value");
    const auto& value = g.value(mapped->second);
    if (g.node(value.producer).kind == graph::NodeKind::kOp)
        fail("leaf %" + std::to_string(old_id) +
             " is produced by an operator, not a leaf");
    if (value.type.dtype() != dtype ||
        value.type.concreteShape().dims != shape.dims)
        fail("leaf %" + std::to_string(old_id) +
             " type disagrees with the graph declaration");

    Tensor tensor = Tensor::zeros(dtype, shape);
    std::istringstream is(raw.substr(eq + 3));
    std::string token;
    int64_t count = 0;
    while (is >> token) {
        if (count >= tensor.numel())
            fail("leaf %" + std::to_string(old_id) + ": more than " +
                 std::to_string(tensor.numel()) + " elements");
        tensor.setScalar(count++,
                         parseFiniteDouble(token, "leaf element"));
    }
    if (count != tensor.numel())
        fail("leaf %" + std::to_string(old_id) + ": got " +
             std::to_string(count) + " elements, want " +
             std::to_string(tensor.numel()));
    exec::LeafValues one;
    one.emplace(mapped->second, std::move(tensor));
    return one;
}

/**
 * Parse a "--- graph ---" body (the cursor sits on "graph {") followed
 * by its "--- leaves ---" section, checking every input and weight is
 * bound. Shared by the plain-graph and graph-pass-sequence layouts.
 */
void
parseGraphAndLeaves(Cursor& cursor, const std::vector<std::string>& lines,
                    graph::Graph& graph_out, exec::LeafValues& leaves_out)
{
    const size_t begin = cursor.pos;
    if (cursor.next("graph body") != "graph {")
        fail("graph section does not start with 'graph {'");
    while (!cursor.done() && lines[cursor.pos] != "}")
        ++cursor.pos;
    if (cursor.done())
        fail("graph section does not end with '}'");
    const size_t body_end = cursor.pos++;
    std::map<int, int> id_map;
    graph_out = parseGraphLines(lines, begin + 1, body_end, &id_map);

    cursor.blanks();
    if (cursor.next("leaves section") != schema::kSectionLeaves)
        fail("expected leaves section after the graph");
    while (!cursor.done() && !lines[cursor.pos].empty()) {
        auto one = parseLeafLine(lines[cursor.pos++], graph_out, id_map);
        for (auto& [id, tensor] : one) {
            if (!leaves_out.emplace(id, std::move(tensor)).second)
                fail("leaf bound twice in the leaves section");
        }
    }
    // Every input and weight must be bound or the repro cannot be
    // re-executed.
    for (const int id : graph_out.inputValues())
        if (leaves_out.count(id) == 0)
            fail("graph input %" + std::to_string(id) +
                 " has no leaf binding");
    for (const int id : graph_out.weightValues())
        if (leaves_out.count(id) == 0)
            fail("graph weight %" + std::to_string(id) +
                 " has no leaf binding");
}

} // namespace

graph::Graph
parseGraphText(const std::string& text, std::map<int, int>* id_map)
{
    const auto lines = splitLines(text);
    if (lines.empty() || lines.front() != "graph {")
        fail("graph section does not start with 'graph {'");
    if (lines.back() != "}")
        fail("graph section does not end with '}'");
    return parseGraphLines(lines, 1, lines.size() - 1, id_map);
}

TirProgram
parseTirProgramText(const std::string& text)
{
    const auto lines = splitLines(text);
    return parseTirProgramLines(lines, 0, lines.size());
}

BugRecord
parseRepro(const std::string& text)
{
    const auto lines = splitLines(text);
    Cursor cursor{lines};

    if (cursor.next("magic line") != schema::kMagic)
        fail(std::string("missing magic line '") + schema::kMagic + "'");
    BugRecord bug;
    bug.dedupKey = cursor.field(schema::kFingerprint);
    bug.backend = cursor.field(schema::kBackend);
    bug.kind = cursor.field(schema::kKind);
    if (bug.kind != "crash" && bug.kind != "wrong-result" &&
        bug.kind != "export-crash")
        fail("unknown bug kind '" + bug.kind + "'");
    bug.detail = cursor.field(schema::kDetail);

    const auto defects = parseDefectList(cursor.field(schema::kDefects));
    bool has_discovery = false;
    std::vector<std::string> discovery;
    if (!cursor.done() &&
        startsWith(lines[cursor.pos], schema::kDiscoveryDefects)) {
        has_discovery = true;
        discovery =
            parseDefectList(cursor.field(schema::kDiscoveryDefects));
    }

    const std::string reduction = cursor.field(schema::kReduction);
    if (reduction == schema::kReductionNone) {
        bug.defects = defects;
        if (has_discovery)
            fail("raw repro cannot carry a discovery-defects line");
    } else {
        // "<N> -> <M> op nodes (ddmin)" / "<N> -> <M> passes (ddmin)"
        std::istringstream is(reduction);
        std::string from, arrow, to;
        is >> from >> arrow >> to;
        std::string unit;
        std::getline(is, unit);
        if (arrow != "->" ||
            (unit != " op nodes (ddmin)" && unit != " passes (ddmin)"))
            fail("malformed reduction line '" + reduction + "'");
        const int64_t original =
            parseIntToken(from, "reduction original size");
        const int64_t shrunk = parseIntToken(to, "reduction size");
        if (original < 0 || shrunk < 0)
            fail("negative size in reduction line '" + reduction + "'");
        bug.minimized = true;
        bug.originalSize = static_cast<size_t>(original);
        bug.minimizedSize = static_cast<size_t>(shrunk);
        bug.minimizedDefects = defects;
        bug.defects = has_discovery ? discovery : defects;
        if (has_discovery && bug.defects == bug.minimizedDefects)
            fail("discovery-defects line equals the defects line");
    }

    cursor.blanks();
    const std::string& section = cursor.next("section marker");
    if (section == schema::kSectionGraph) {
        auto repro = std::make_shared<fuzz::GraphRepro>();
        parseGraphAndLeaves(cursor, lines, repro->graph, repro->leaves);

        // The trailing onnx section is regenerated from the graph on
        // re-serialization; accept and skip whatever is here.
        if (!cursor.done()) {
            cursor.blanks();
            if (cursor.next("onnx section") != schema::kSectionOnnx)
                fail("expected onnx section after the leaves");
            cursor.pos = lines.size();
        }
        bug.graphRepro = std::move(repro);
        return bug;
    }

    if (section != schema::kSectionSequence)
        fail("unknown section marker '" + section + "'");
    const std::string joined = cursor.next("pass sequence");
    if (joined.empty())
        fail("empty pass sequence");
    const auto names = splitOn(joined, ',');

    // The backend tag selects the pass registry: OrtLite/TrtLite
    // sequences are graph passes over a model, TVMLite sequences are
    // TIR passes over a program. Any other tag has no registry.
    if (backends::isGraphPassBackend(bug.backend)) {
        auto repro = std::make_shared<fuzz::GraphSeqRepro>();
        for (const auto& name : names) {
            if (backends::findGraphPass(bug.backend, name) == nullptr)
                fail("unknown " + bug.backend + " graph pass '" + name +
                     "'");
            repro->sequence.push_back(name);
        }
        cursor.blanks();
        if (cursor.next("graph section") != schema::kSectionGraph)
            fail("expected graph section after the pass sequence");
        parseGraphAndLeaves(cursor, lines, repro->graph, repro->leaves);
        if (!cursor.done())
            fail("trailing content after the leaves section");
        bug.graphSeqRepro = std::move(repro);
        return bug;
    }
    if (bug.backend != "TVMLite")
        fail("backend '" + bug.backend +
             "' has no sequenceable pass registry");

    auto repro = std::make_shared<fuzz::SeqRepro>();
    for (const auto& name : names) {
        if (tirlite::findTirPass(name) == nullptr)
            fail("unknown TIR pass '" + name + "'");
        repro->sequence.push_back(name);
    }

    cursor.blanks();
    if (cursor.next("tir program section") != schema::kSectionProgram)
        fail("expected tir program section after the pass sequence");
    const size_t begin = cursor.pos;
    while (!cursor.done() && !lines[cursor.pos].empty())
        ++cursor.pos;
    repro->program = parseTirProgramLines(lines, begin, cursor.pos);

    if (!cursor.done()) {
        cursor.blanks();
        if (cursor.next("buffers section") != schema::kSectionBuffers)
            fail("expected initial-buffers section after the program");
        while (!cursor.done() && !lines[cursor.pos].empty()) {
            // "  buffer[0]: v v v"
            const std::string& line = lines[cursor.pos++];
            const std::string prefix =
                "  buffer[" + std::to_string(repro->initial.size()) +
                "]:";
            if (!startsWith(line, prefix))
                fail("malformed or out-of-order buffer line '" + line +
                     "'");
            if (repro->initial.size() >= repro->program.bufferSizes.size())
                fail("more initial buffers than declared buffers");
            std::vector<double> values;
            std::istringstream is(line.substr(prefix.size()));
            std::string token;
            while (is >> token)
                values.push_back(
                    parseFiniteDouble(token, "buffer element"));
            const auto want = static_cast<size_t>(
                repro->program
                    .bufferSizes[repro->initial.size()]);
            if (values.size() != want)
                fail("buffer[" + std::to_string(repro->initial.size()) +
                     "] has " + std::to_string(values.size()) +
                     " elements, want " + std::to_string(want));
            repro->initial.push_back(std::move(values));
        }
        if (repro->initial.size() != repro->program.bufferSizes.size())
            fail("initial-buffers section covers " +
                 std::to_string(repro->initial.size()) + " of " +
                 std::to_string(repro->program.bufferSizes.size()) +
                 " buffers");
    }
    // The genuine-miscompile record (fingerprint-tagged — replay keys
    // off the dedup key, not the editable defects line) is pinned by
    // the differential interp oracle, which needs the captured inputs.
    if (bug.kind == "wrong-result" &&
        reduce::crashKindOfKey(bug.dedupKey) == "tir.seq.miscompile" &&
        repro->initial.empty())
        fail("miscompile repro without initial buffers is not "
             "replayable");
    bug.seqRepro = std::move(repro);
    return bug;
}

} // namespace nnsmith::corpus
