/**
 * @file
 * Regression-corpus replay — the second half of the paper's bug-study
 * workflow: fuzzing *discovers* defects, the corpus *re-checks* every
 * known defect on each run.
 *
 * `replayCorpus` loads a `--report-dir` corpus (corpus/corpus.h),
 * parses every repro (corpus/parser.h) and re-runs it through the
 * oracle that flagged it — the difftest trio for graph repros, the
 * bitwise tir_interp differential oracle for TIR pass-sequence
 * repros, and the owning backend's run(kO0)-vs-runWithPasses oracle
 * for graph-level pass-sequence repros — classifying each fingerprint
 * as:
 *
 *  - **still-fires**: the recorded fingerprint re-fires — the bug is
 *    still present (the expected state for a regression suite seeded
 *    from the same code).
 *  - **changed**: the repro still signals a bug, but with a different
 *    fingerprint (different crash kind, different defect set, or a
 *    new miscompare) — a flaky or shifted defect worth triage.
 *  - **fixed**: the repro runs clean — the bug no longer reproduces.
 *  - **parse-error**: the repro file or index row is malformed; the
 *    structured message lands in the outcome's detail.
 *
 * Campaign drivers run replay *before* fresh fuzzing when
 * `CampaignConfig::corpusDir` is set (bench flag `--corpus`), write
 * `regressions.tsv` next to the reports, and keep replay's oracle
 * runs out of coverage accounting — so replay is deterministic and
 * byte-identical for any shard count, like minimization.
 */
#ifndef NNSMITH_CORPUS_REPLAY_H
#define NNSMITH_CORPUS_REPLAY_H

#include "backends/backend.h"
#include "corpus/corpus.h"

namespace nnsmith::corpus {

/** Replay verdict for one corpus entry. */
enum class ReplayStatus {
    kStillFires,
    kChanged,
    kFixed,
    kParseError,
};

/** Stable spelling used in regressions.tsv ("still-fires", ...). */
std::string replayStatusName(ReplayStatus status);

/** One corpus entry's replay verdict. */
struct ReplayOutcome {
    std::string fingerprint;
    std::string file;
    std::string kind;
    ReplayStatus status = ReplayStatus::kFixed;
    /** changed: the observed signals; parse-error: the message. */
    std::string detail;
};

/** Everything a corpus replay produces. */
struct ReplayResult {
    std::vector<ReplayOutcome> outcomes; ///< index (fingerprint) order
    size_t stillFires = 0;
    size_t changed = 0;
    size_t fixed = 0;
    size_t parseErrors = 0;

    size_t total() const { return outcomes.size(); }
};

/**
 * Re-run one parsed repro and classify it. Graph repros run the
 * difftest oracle over @p backends; sequence repros need none (TIR
 * sequences use the interpreter, graph sequences construct their
 * owning backend by name). The fingerprint compared against is
 * @p bug.dedupKey. Deterministic, and leaves no trigger-trace residue
 * (TraceScope-scoped internally).
 */
ReplayOutcome replayRepro(const fuzz::BugRecord& bug,
                          const std::vector<backends::Backend*>& backends);

/**
 * Load `dir`'s index, parse and replay every entry. Per-file parse
 * failures become kParseError outcomes; a missing or malformed
 * index.tsv throws ParseError. Outcomes keep index order, so the
 * result — like the corpus itself — is byte-stable across runs and
 * shard counts.
 */
ReplayResult replayCorpus(const std::string& dir,
                          const std::vector<backends::Backend*>& backends);

/** regressions.tsv text: header + one row per outcome. */
std::string renderRegressions(const ReplayResult& result);

/** Write renderRegressions to `dir`/regressions.tsv. */
void writeRegressions(const std::string& dir, const ReplayResult& result);

} // namespace nnsmith::corpus

#endif // NNSMITH_CORPUS_REPLAY_H
