/**
 * @file
 * The repro-corpus schema — the single definition of the on-disk
 * minimized-repro format that the report writer (reduce/report.h) and
 * the corpus parsers (corpus/parser.h) share.
 *
 * A campaign with `--report-dir` emits one `*.repro.txt` per deduped
 * fingerprint plus an `index.tsv`; together they form the *regression
 * corpus* — the paper's "known bug" suite that every later campaign
 * re-checks before fresh fuzzing (corpus/replay.h). The format is
 * plain text so repros can be read, diffed and hand-edited:
 *
 *   # nnsmith minimized repro
 *   fingerprint: <dedup key>
 *   backend: <OrtLite|TVMLite|TrtLite|Exporter>
 *   kind: <crash|wrong-result|export-crash>
 *   detail: <one-line diagnostic>
 *   defects: <repro's own trigger trace, space-separated>
 *   [discovery defects: <discovery-time trace, when it differs>]
 *   reduction: <N -> M op nodes|passes (ddmin)> | none (raw flagged case)
 *
 *   --- graph ---            | --- pass sequence ---
 *   graph { ... }            | p1,p2,...
 *   --- leaves ---           | --- tir program ---
 *   %id: dtype[shape] = ...  | buffer b0[8] (input) ... loop nest
 *   --- onnx ---             | --- initial buffers ---
 *   onnxlite v1 ...          |   buffer[0]: v v v ...
 *
 * A third layout carries *graph-level* pass-sequence repros (the
 * backend: field selects the pass registry — TVMLite sequences are
 * TIR passes, OrtLite/TrtLite sequences are graph passes):
 *
 *   --- pass sequence ---
 *   fuse.matmul_add_gemm,misc.scheduler,...
 *   --- graph ---
 *   graph { ... }
 *   --- leaves ---
 *   %id: dtype[shape] = ...
 *
 * `renderRepro` is the only renderer of this format; the writer and
 * every test round-trips through it, so serialize -> parse ->
 * re-serialize is byte-identical for canonical (minimized) repros.
 */
#ifndef NNSMITH_CORPUS_CORPUS_H
#define NNSMITH_CORPUS_CORPUS_H

#include <stdexcept>
#include <string>
#include <vector>

#include "fuzz/fuzzer.h"

namespace nnsmith::corpus {

/**
 * Structured parse failure: malformed repro files, truncated
 * sections, unknown ops/passes, non-finite buffer literals or a
 * wrong-column index.tsv all surface as this exception — never as a
 * crash or an internal panic (the malformed-input contract enforced
 * by tests/corpus_test.cpp under ASan).
 */
class ParseError : public std::runtime_error {
  public:
    explicit ParseError(const std::string& what)
        : std::runtime_error(what) {}
};

/** Field/section spellings of the repro format (see file comment). */
namespace schema {
inline constexpr const char* kMagic = "# nnsmith minimized repro";
inline constexpr const char* kFingerprint = "fingerprint: ";
inline constexpr const char* kBackend = "backend: ";
inline constexpr const char* kKind = "kind: ";
inline constexpr const char* kDetail = "detail: ";
inline constexpr const char* kDefects = "defects:";
inline constexpr const char* kDiscoveryDefects = "discovery defects:";
inline constexpr const char* kReduction = "reduction: ";
inline constexpr const char* kReductionNone = "none (raw flagged case)";
inline constexpr const char* kSectionGraph = "--- graph ---";
inline constexpr const char* kSectionLeaves = "--- leaves ---";
inline constexpr const char* kSectionOnnx = "--- onnx ---";
inline constexpr const char* kSectionSequence = "--- pass sequence ---";
inline constexpr const char* kSectionProgram = "--- tir program ---";
inline constexpr const char* kSectionBuffers = "--- initial buffers ---";
inline constexpr const char* kIndexHeader =
    "fingerprint\tfile\tkind\toriginal\tminimized";
} // namespace schema

/**
 * Render one bug record into the on-disk repro text. Requires repro
 * material (graphRepro, seqRepro or graphSeqRepro); the graphRepro
 * side re-runs the ONNX export, so export-crash defects may fire into
 * the ambient trigger trace (scope with DefectRegistry::TraceScope
 * where that matters).
 */
std::string renderRepro(const fuzz::BugRecord& bug);

/** One row of a corpus `index.tsv`. */
struct CorpusEntry {
    std::string fingerprint;
    std::string file; ///< repro file name relative to the corpus dir
    std::string kind; ///< "crash" | "wrong-result" | "export-crash"
    size_t originalSize = 0;
    size_t minimizedSize = 0;
};

/**
 * Parse `index.tsv` text. Throws ParseError on a missing/wrong header,
 * a row with the wrong column count, or non-numeric size columns.
 */
std::vector<CorpusEntry> parseIndexTsv(const std::string& text);

/**
 * Load `dir`/index.tsv. Throws ParseError when the directory or index
 * is missing or malformed. Entries come back in file (fingerprint)
 * order, which is what makes corpus replay deterministic.
 */
std::vector<CorpusEntry> loadCorpusIndex(const std::string& dir);

/** Read a whole file; throws ParseError when unreadable. */
std::string readCorpusFile(const std::string& path);

/** Write @p content to @p path; fatal() when unwritable. Shared by
 *  the report writer (reduce/report.cpp) and regressions.tsv. */
void writeCorpusFile(const std::string& path, const std::string& content);

} // namespace nnsmith::corpus

#endif // NNSMITH_CORPUS_CORPUS_H
