#include "support/vclock.h"

#include "support/logging.h"

namespace nnsmith {

void
VirtualClock::advance(VirtualMs ms)
{
    NNSMITH_ASSERT(ms >= 0, "clock cannot go backwards: ", ms);
    now_ += ms;
}

} // namespace nnsmith
