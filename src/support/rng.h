/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic component in the library draws from an explicitly
 * threaded Rng so that campaigns replay bit-identically from a seed.
 */
#ifndef NNSMITH_SUPPORT_RNG_H
#define NNSMITH_SUPPORT_RNG_H

#include <cstdint>
#include <vector>

#include "support/logging.h"

namespace nnsmith {

/**
 * SplitMix64-seeded xoshiro256** generator.
 *
 * Small, fast, and reproducible across platforms (unlike std::mt19937
 * paired with distribution objects, whose outputs are
 * implementation-defined).
 */
class Rng {
  public:
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit draw. */
    uint64_t next();

    /** Uniform integer in [lo, hi] (inclusive). Requires lo <= hi. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double uniformReal();

    /** Uniform double in [lo, hi). */
    double uniformReal(double lo, double hi);

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p);

    /** Pick a uniformly random index in [0, n). Requires n > 0. */
    size_t index(size_t n);

    /** Pick a random element of @p v by reference. */
    template <typename T>
    const T&
    pick(const std::vector<T>& v)
    {
        NNSMITH_ASSERT(!v.empty(), "pick() from empty vector");
        return v[index(v.size())];
    }

    /** Standard-normal draw (Box–Muller). */
    double gaussian();

    /** In-place Fisher–Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T>& v)
    {
        for (size_t i = v.size(); i > 1; --i)
            std::swap(v[i - 1], v[index(i)]);
    }

    /** Derive an independent child generator (for subcomponents). */
    Rng fork();

  private:
    uint64_t s_[4];
};

} // namespace nnsmith

#endif // NNSMITH_SUPPORT_RNG_H
