#include "support/logging.h"

#include <iostream>

namespace nnsmith {

namespace {

LogLevel g_threshold = LogLevel::kWarn;

const char*
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo:  return "INFO";
      case LogLevel::kWarn:  return "WARN";
      case LogLevel::kError: return "ERROR";
    }
    return "?";
}

} // namespace

LogLevel
logThreshold()
{
    return g_threshold;
}

void
setLogThreshold(LogLevel level)
{
    g_threshold = level;
}

void
logMessage(LogLevel level, const std::string& msg)
{
    if (static_cast<int>(level) < static_cast<int>(g_threshold))
        return;
    std::cerr << "[nnsmith " << levelName(level) << "] " << msg << "\n";
}

void
panic(const std::string& msg)
{
    logMessage(LogLevel::kError, "panic: " + msg);
    throw PanicError(msg);
}

void
fatal(const std::string& msg)
{
    logMessage(LogLevel::kError, "fatal: " + msg);
    throw FatalError(msg);
}

void
warn(const std::string& msg)
{
    logMessage(LogLevel::kWarn, msg);
}

void
inform(const std::string& msg)
{
    logMessage(LogLevel::kInfo, msg);
}

} // namespace nnsmith
