/**
 * @file
 * Logging and error-reporting primitives (gem5-style panic/fatal split).
 *
 * panic()  — an internal invariant was violated: a bug in this library.
 * fatal()  — the caller asked for something impossible (user error).
 * warn()/inform() — status messages that never stop execution.
 */
#ifndef NNSMITH_SUPPORT_LOGGING_H
#define NNSMITH_SUPPORT_LOGGING_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace nnsmith {

/** Severity levels for log messages. */
enum class LogLevel { kDebug, kInfo, kWarn, kError };

/** Global log threshold; messages below it are dropped. */
LogLevel logThreshold();
void setLogThreshold(LogLevel level);

/** Emit one log line to stderr if @p level passes the threshold. */
void logMessage(LogLevel level, const std::string& msg);

/** Thrown by panic(): an internal invariant of the library was broken. */
class PanicError : public std::logic_error {
  public:
    explicit PanicError(const std::string& what) : std::logic_error(what) {}
};

/** Thrown by fatal(): unrecoverable user/configuration error. */
class FatalError : public std::runtime_error {
  public:
    explicit FatalError(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] void panic(const std::string& msg);
[[noreturn]] void fatal(const std::string& msg);
void warn(const std::string& msg);
void inform(const std::string& msg);

namespace detail {

/** Fold arbitrary streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** panic() with streamable arguments: NNSMITH_PANIC("bad id ", id). */
#define NNSMITH_PANIC(...) \
    ::nnsmith::panic(::nnsmith::detail::concat("[", __FILE__, ":", __LINE__, \
                                               "] ", __VA_ARGS__))

/** Assert an internal invariant; throws PanicError when violated. */
#define NNSMITH_ASSERT(cond, ...)                                    \
    do {                                                             \
        if (!(cond)) {                                               \
            NNSMITH_PANIC("assertion `" #cond "` failed: ",          \
                          ::nnsmith::detail::concat(__VA_ARGS__));   \
        }                                                            \
    } while (0)

} // namespace nnsmith

#endif // NNSMITH_SUPPORT_LOGGING_H
