/**
 * @file
 * Virtual clock used by fuzzing campaigns.
 *
 * The paper's coverage experiments run for 4 wall-clock hours; we replay
 * the same dynamics in seconds by charging each fuzzer iteration a
 * calibrated virtual cost (see DESIGN.md, "Substitutions"). Keeping time
 * virtual also makes every figure deterministic.
 */
#ifndef NNSMITH_SUPPORT_VCLOCK_H
#define NNSMITH_SUPPORT_VCLOCK_H

#include <cstdint>

namespace nnsmith {

/** Milliseconds of virtual time. */
using VirtualMs = int64_t;

/** A monotonically advancing virtual clock. */
class VirtualClock {
  public:
    VirtualClock() = default;

    /** Current virtual time in milliseconds since campaign start. */
    VirtualMs now() const { return now_; }

    /** Advance the clock by @p ms (must be non-negative). */
    void advance(VirtualMs ms);

    /** Convenience: current time in (fractional) virtual minutes. */
    double minutes() const { return static_cast<double>(now_) / 60000.0; }

  private:
    VirtualMs now_ = 0;
};

} // namespace nnsmith

#endif // NNSMITH_SUPPORT_VCLOCK_H
