#include "support/rng.h"

#include <cmath>

namespace nnsmith {

namespace {

uint64_t
splitMix64(uint64_t& x)
{
    x += 0x9E3779B97F4A7C15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t x = seed;
    for (auto& s : s_)
        s = splitMix64(x);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    NNSMITH_ASSERT(lo <= hi, "uniformInt: lo ", lo, " > hi ", hi);
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<int64_t>(next());
    // Rejection sampling to remove modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    uint64_t draw;
    do {
        draw = next();
    } while (draw >= limit);
    return lo + static_cast<int64_t>(draw % span);
}

double
Rng::uniformReal()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniformReal(double lo, double hi)
{
    return lo + (hi - lo) * uniformReal();
}

bool
Rng::chance(double p)
{
    return uniformReal() < p;
}

size_t
Rng::index(size_t n)
{
    NNSMITH_ASSERT(n > 0, "index() with n == 0");
    return static_cast<size_t>(uniformInt(0, static_cast<int64_t>(n) - 1));
}

double
Rng::gaussian()
{
    // Box–Muller; discard the second variate for simplicity.
    double u1 = uniformReal();
    double u2 = uniformReal();
    if (u1 < 1e-300)
        u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace nnsmith
